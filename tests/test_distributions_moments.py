"""Tests for the raw-moment helper functions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import (
    Exponential,
    check_feasible_moments,
    coxian2,
    moments_close,
    moments_of_mixture,
    moments_of_scaled,
    moments_of_sum,
    scv_from_moments,
)


class TestScv:
    def test_exponential(self):
        assert scv_from_moments(1.0, 2.0) == pytest.approx(1.0)

    def test_deterministic(self):
        assert scv_from_moments(2.0, 4.0) == pytest.approx(0.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            scv_from_moments(0.0, 1.0)


class TestFeasibility:
    def test_exponential_feasible(self):
        check_feasible_moments(*Exponential(1.0).moments(3))

    def test_jensen_violation(self):
        with pytest.raises(ValueError):
            check_feasible_moments(2.0, 1.0, 1.0)

    def test_cauchy_schwarz_violation(self):
        with pytest.raises(ValueError):
            check_feasible_moments(1.0, 2.0, 3.0)  # m3*m1 < m2^2

    def test_nonpositive(self):
        with pytest.raises(ValueError):
            check_feasible_moments(1.0, -1.0, 1.0)


class TestSumMixtureScale:
    def test_sum_matches_convolution(self):
        a = Exponential(1.0)
        b = Exponential(2.0)
        got = moments_of_sum(a.moments(3), b.moments(3))
        # Hypoexponential(1, 2) via Coxian with p=1.
        exact = coxian2(1.0, 2.0, 1.0).moments(3)
        assert moments_close(got, exact)

    def test_sum_with_zero(self):
        a = Exponential(1.5).moments(3)
        assert moments_close(moments_of_sum(a, (0.0, 0.0, 0.0)), a)

    def test_mixture(self):
        a = Exponential(1.0).moments(3)
        b = Exponential(2.0).moments(3)
        got = moments_of_mixture([0.3, 0.7], [a, b])
        for j in range(3):
            assert got[j] == pytest.approx(0.3 * a[j] + 0.7 * b[j])

    def test_mixture_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            moments_of_mixture([0.3, 0.3], [(1, 2, 6), (1, 2, 6)])

    def test_scaled(self):
        m = Exponential(1.0).moments(3)
        got = moments_of_scaled(m, 2.0)
        exact = Exponential(0.5).moments(3)
        assert moments_close(got, exact)

    @given(
        r1=st.floats(0.1, 10.0),
        r2=st.floats(0.1, 10.0),
        w=st.floats(0.01, 0.99),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_mixture_and_sum_stay_feasible(self, r1, r2, w):
        a = Exponential(r1).moments(3)
        b = Exponential(r2).moments(3)
        check_feasible_moments(*moments_of_sum(a, b))
        check_feasible_moments(*moments_of_mixture([w, 1 - w], [a, b]))
