"""The store codec's bit-identity contract (repro.perf.codec).

The persistent store may only ever return a value bit-identical to what
the miss path computed — so the codec must round-trip every cached type
exactly: floats down to the sign of zero and the payload of inf/nan,
numpy arrays down to the raw buffer, phase-type representations down to
each matrix entry.  Hypothesis drives the primitives; the domain types
are exercised on the figure-grid workloads in ``test_perf_store.py``.
"""

import json
import math
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import (
    Coxian,
    Erlang,
    Exponential,
    Hyperexponential,
    PhaseType,
    fit_phase_type,
)
from repro.perf.codec import decode_value, encode_value, key_digest
from repro.robustness import SerializationError


def roundtrip(value):
    return decode_value(encode_value(value))


def bits(x: float) -> bytes:
    return struct.pack("<d", x)


# Finite + signed zeros + inf + nan + subnormals: everything a float64
# can hold must survive bit-exactly.
any_float = st.floats(allow_nan=True, allow_infinity=True, width=64)

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    any_float,
    st.text(max_size=30),
    st.binary(max_size=30),
)


def trees(leaves):
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.tuples(children, children),
            st.dictionaries(st.text(max_size=8), children, max_size=4),
        ),
        max_leaves=20,
    )


class TestPrimitiveRoundtrips:
    @given(any_float)
    def test_floats_are_bit_identical(self, x):
        assert bits(roundtrip(x)) == bits(x)

    @given(trees(json_scalars))
    @settings(max_examples=50)
    def test_nested_containers(self, tree):
        got = roundtrip(tree)
        # NaN breaks ==; compare through the codec itself, which is
        # injective on the supported domain.
        assert encode_value(got) == encode_value(tree)

    def test_container_types_are_preserved(self):
        got = roundtrip({"t": (1, 2), "l": [3, 4]})
        assert isinstance(got["t"], tuple) and isinstance(got["l"], list)

    def test_signed_zero_and_nan_payload(self):
        assert bits(roundtrip(-0.0)) == bits(-0.0)
        weird_nan = struct.unpack("<d", b"\x01\x00\x00\x00\x00\x00\xf8\x7f")[0]
        assert math.isnan(roundtrip(weird_nan))

    @given(
        st.one_of(
            st.integers(-(2**31), 2**31 - 1).map(np.int64),
            any_float.map(np.float64),
        )
    )
    def test_numpy_scalars_keep_their_type(self, scalar):
        got = roundtrip(scalar)
        assert type(got) is type(scalar)
        assert got.tobytes() == scalar.tobytes()


class TestArrayRoundtrips:
    @given(
        st.lists(any_float, min_size=0, max_size=12),
        st.sampled_from([np.float64, np.float32, np.int64, np.complex128]),
    )
    @settings(max_examples=50)
    def test_1d_arrays(self, values, dtype):
        if dtype in (np.int64,):
            arr = np.arange(len(values), dtype=dtype)
        else:
            arr = np.asarray(values, dtype=dtype)
        got = roundtrip(arr)
        assert got.dtype == arr.dtype and got.shape == arr.shape
        assert got.tobytes() == arr.tobytes()

    def test_2d_and_noncontiguous(self):
        arr = np.arange(12.0).reshape(3, 4)
        sliced = arr[:, ::2]  # non-contiguous view
        got = roundtrip(sliced)
        assert got.shape == sliced.shape
        assert np.array_equal(got, sliced)

    def test_decoded_array_is_writable_and_owned(self):
        got = roundtrip(np.zeros(3))
        got[0] = 1.0  # np.frombuffer alone would be read-only


class TestDomainRoundtrips:
    @pytest.mark.parametrize(
        "dist",
        [
            Exponential(2.5),
            Erlang(3, 1.5),
            Coxian([2.0, 3.0], [0.5]),
            Hyperexponential([0.4, 0.6], [1.0, 5.0]),
        ],
        ids=["exponential", "erlang", "coxian", "hyperexponential"],
    )
    def test_simple_distributions(self, dist):
        got = roundtrip(dist)
        assert type(got) is type(dist)
        for k in (1, 2, 3):
            assert bits(got.moment(k)) == bits(dist.moment(k))

    def test_phase_type_matrices_bit_identical(self):
        alpha = np.array([0.3, 0.7])
        T = np.array([[-2.0, 1.0], [0.0, -3.0]])
        got = roundtrip(PhaseType(alpha, T))
        assert got.alpha.tobytes() == PhaseType(alpha, T).alpha.tobytes()
        assert got.T.tobytes() == T.tobytes()

    @pytest.mark.parametrize("scv", [0.5, 1.0, 4.0])
    def test_fitted_ph_roundtrips(self, scv):
        m1 = 1.0
        m2 = (scv + 1.0) * m1 * m1
        m3 = 2.0 * m2 * m2 / m1  # loose but valid third moment
        fit = fit_phase_type(m1, m2, m3)
        got = roundtrip(fit)
        assert type(got) is type(fit)
        for k in (1, 2, 3):
            assert bits(got.moment(k)) == bits(fit.moment(k))


class TestRejections:
    def test_unknown_type_is_a_serialization_error(self):
        class Opaque:
            pass

        with pytest.raises(SerializationError):
            encode_value(Opaque())

    def test_unknown_tag_is_a_serialization_error(self):
        payload = json.dumps({"codec": 1, "tree": ["no-such-tag", 1]}).encode() + b"\n"
        with pytest.raises(SerializationError):
            decode_value(payload)

    def test_wrong_codec_version_is_rejected(self):
        payload = json.dumps({"codec": 999, "tree": ["none"]}).encode() + b"\n"
        with pytest.raises(SerializationError):
            decode_value(payload)

    def test_blob_out_of_bounds_is_rejected(self):
        payload = (
            json.dumps({"codec": 1, "tree": ["bytes", 0, 100]}).encode() + b"\nxy"
        )
        with pytest.raises(SerializationError):
            decode_value(payload)


class TestKeyDigest:
    def test_stable_and_distinct(self):
        key = ("mg1", 0.5, (1.0, 2.0, 6.0))
        assert key_digest("busy-moments", key) == key_digest("busy-moments", key)
        assert key_digest("busy-moments", key) != key_digest("ph-fit", key)
        assert key_digest("busy-moments", key) != key_digest(
            "busy-moments", ("mg1", 0.5, (1.0, 2.0, 6.1))
        )

    def test_extra_discriminates(self):
        assert key_digest("ns", "k", extra="schema=1") != key_digest(
            "ns", "k", extra="schema=2"
        )

    def test_float_keys_distinguish_close_values(self):
        a = key_digest("ns", 0.1 + 0.2)
        b = key_digest("ns", 0.3)
        assert a != b  # 0.1+0.2 != 0.3 in float64; keys are bit-exact


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-v"]))
