"""Tests for the experiment harness (figures, validation, ablations)."""

import numpy as np
import pytest

from repro.experiments import (
    Panel,
    Series,
    figure3_panel,
    figure4_panels,
    figure5_panels,
    figure6_panels,
    format_panel,
    format_table,
    limiting_cases,
)


class TestFramework:
    def test_series_length_check(self):
        with pytest.raises(ValueError):
            Series("x", np.array([1.0, 2.0]), np.array([1.0]))

    def test_finite_points(self):
        s = Series("x", np.array([1.0, 2.0, 3.0]), np.array([1.0, np.nan, 3.0]))
        x, y = s.finite_points()
        assert list(x) == [1.0, 3.0]

    def test_panel_lookup(self):
        s = Series("curve", np.array([1.0]), np.array([1.0]))
        panel = Panel("t", "x", "y", (s,))
        assert panel.by_label("curve") is s
        with pytest.raises(KeyError):
            panel.by_label("nope")

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1.0, float("nan")], [2.0, 3.0]])
        assert "unstable" in text
        assert text.count("\n") == 3

    def test_format_panel(self):
        s = Series("c", np.array([0.5]), np.array([1.25]))
        text = format_panel(Panel("Title", "x", "y", (s,)))
        assert "Title" in text and "1.2500" in text


class TestPanelGridValidation:
    """Panel rejects mismatched x grids at construction (used to surface
    as an IndexError deep inside format_panel/render_ascii_chart)."""

    def test_rejects_empty_series(self):
        with pytest.raises(ValueError, match="at least one series"):
            Panel("t", "x", "y", ())

    def test_rejects_different_grid_lengths(self):
        a = Series("a", np.array([0.1, 0.2, 0.3]), np.zeros(3))
        b = Series("b", np.array([0.1, 0.2]), np.zeros(2))
        with pytest.raises(ValueError, match="common x grid"):
            Panel("t", "x", "y", (a, b))

    def test_rejects_different_grid_values(self):
        a = Series("a", np.array([0.1, 0.2, 0.3]), np.zeros(3))
        b = Series("b", np.array([0.1, 0.2, 0.4]), np.zeros(3))
        with pytest.raises(ValueError, match="common x grid"):
            Panel("t", "x", "y", (a, b))

    def test_accepts_common_grid(self):
        x = np.array([0.1, 0.2, 0.3])
        a = Series("a", x, np.zeros(3))
        b = Series("b", x.copy(), np.ones(3))
        panel = Panel("t", "x", "y", (a, b))
        assert "0.100" in format_panel(panel)


class TestFigure3:
    def test_shape(self):
        panel = figure3_panel(np.arange(0.0, 1.0, 0.25))
        dedicated = panel.by_label("Dedicated").y
        cs_id = panel.by_label("Immed-Disp").y
        cs_cq = panel.by_label("Central-Q").y
        assert np.all(dedicated == 1.0)
        assert np.all(cs_id > dedicated)
        assert np.all(cs_cq > cs_id)
        assert cs_cq[0] == pytest.approx(2.0)


class TestFigure4:
    @pytest.fixture(scope="class")
    def panels(self):
        return figure4_panels(rho_s_values=[0.4, 0.8, 1.2])

    def test_six_panels(self, panels):
        assert len(panels) == 6

    def test_ordering_of_policies_for_shorts(self, panels):
        shorts_a = panels[0]
        dedicated = shorts_a.by_label("Dedicated").y
        cs_id = shorts_a.by_label("CS-Immed-Disp").y
        cs_cq = shorts_a.by_label("CS-Central-Q").y
        finite = np.isfinite(dedicated)
        assert np.all(cs_cq[finite] < cs_id[finite])
        assert np.all(cs_id[finite] < dedicated[finite])

    def test_dedicated_unstable_past_one(self, panels):
        shorts_a = panels[0]
        dedicated = shorts_a.by_label("Dedicated").y
        assert np.isnan(dedicated[-1])  # rho_s = 1.2

    def test_longs_penalty_ordering(self, panels):
        longs_a = panels[1]
        dedicated = longs_a.by_label("Dedicated").y
        cs_id = longs_a.by_label("CS-Immed-Disp").y
        cs_cq = longs_a.by_label("CS-Central-Q").y
        finite = np.isfinite(dedicated)
        # Longs suffer under cycle stealing, more under CS-ID than CS-CQ.
        assert np.all(cs_id[finite] > cs_cq[finite])
        assert np.all(cs_cq[finite] > dedicated[finite])


class TestFigure5:
    def test_high_variability_longs(self):
        panels = figure5_panels(rho_s_values=[0.8])
        longs_a = panels[1]
        # Coxian C2=8 longs: Dedicated T_L = 1 + lam E[X^2]/(2(1-rho)).
        dedicated = longs_a.by_label("Dedicated").y[0]
        assert dedicated == pytest.approx(1 + 0.5 * 9.0 / (2 * 0.5), rel=1e-9)


class TestFigure6:
    @pytest.fixture(scope="class")
    def panels(self):
        return figure6_panels(
            rho_l_values_short=[0.05, 0.25, 0.45],
            rho_l_values_long=[0.25, 0.55, 0.85],
        )

    def test_panel_count(self, panels):
        assert len(panels) == 6  # 3 cases x (shorts, longs)

    def test_cs_id_blows_up_before_cs_cq(self, panels):
        shorts_a = panels[0]
        cs_id = shorts_a.by_label("CS-Immed-Disp").y
        cs_cq = shorts_a.by_label("CS-Central-Q").y
        # At rho_s = 1.5, CS-ID is unstable past rho_l ~ 0.135.
        assert np.isnan(cs_id[-1])
        assert np.isfinite(cs_cq).all()

    def test_longs_defined_across_full_range(self, panels):
        longs_a = panels[1]
        for label in ("Dedicated", "CS-Immed-Disp", "CS-Central-Q"):
            assert np.isfinite(longs_a.by_label(label).y).all()


class TestLimitingCases:
    def test_all_limits_tight(self):
        """The paper calls this validation 'perfect'."""
        for result in limiting_cases():
            assert result.rel_error < 1e-3, result.name
