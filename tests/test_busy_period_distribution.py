"""Distribution-level tests for busy periods (beyond the paper's moments)."""

import numpy as np
import pytest

from repro.busy_periods import MG1BusyPeriod
from repro.distributions import Exponential, coxian_from_mean_scv


def simulate_busy_periods(lam, service, rng, n: int) -> np.ndarray:
    """Direct Monte Carlo of M/G/1 busy periods (no queue needed):
    B = X + (busy periods of the arrivals during X), unrolled iteratively
    as remaining-work bookkeeping."""
    out = np.empty(n)
    for idx in range(n):
        remaining = float(service.sample(rng))
        total = 0.0
        while remaining > 0.0:
            gap = rng.exponential(1.0 / lam)
            if gap >= remaining:
                total += remaining
                remaining = 0.0
            else:
                total += gap
                remaining -= gap
                remaining += float(service.sample(rng))
        out[idx] = total
    return out


class TestBusyPeriodCdf:
    def test_cdf_monotone_and_normalized(self):
        bp = MG1BusyPeriod(0.5, Exponential(1.0))
        grid = [0.2, 0.5, 1.0, 3.0, 10.0, 50.0]
        values = [bp.cdf(t) for t in grid]
        assert values == sorted(values)
        assert 0.0 <= values[0] and values[-1] > 0.99

    def test_cdf_vs_monte_carlo(self, rng):
        lam = 0.4
        service = Exponential(1.0)
        bp = MG1BusyPeriod(lam, service)
        samples = simulate_busy_periods(lam, service, rng, 40_000)
        for t in (0.5, 1.5, 4.0):
            empirical = float((samples <= t).mean())
            assert bp.cdf(t) == pytest.approx(empirical, abs=0.01)

    def test_cdf_vs_monte_carlo_high_variability(self, rng):
        lam = 0.3
        service = coxian_from_mean_scv(1.0, 8.0)
        bp = MG1BusyPeriod(lam, service)
        samples = simulate_busy_periods(lam, service, rng, 40_000)
        for t in (0.2, 1.0, 5.0):
            empirical = float((samples <= t).mean())
            assert bp.cdf(t) == pytest.approx(empirical, abs=0.012)

    def test_coxian_standin_matches_bulk_and_tail(self):
        """The paper's 3-moment Coxian misses fine structure near t = 0
        (~5 CDF points) but tracks the true busy-period law from the bulk
        onward — which is why three moments suffice for mean response
        times (the chain only integrates against the busy period)."""
        bp = MG1BusyPeriod(0.5, Exponential(1.0))
        standin = bp.as_phase_type()
        from repro.transforms import cdf_from_lst

        head_gap = abs(cdf_from_lst(standin.laplace, 0.5) - bp.cdf(0.5))
        assert 0.01 < head_gap < 0.08  # visibly imperfect at the head ...
        for t in (2.0, 5.0, 10.0, 20.0):
            true_cdf = bp.cdf(t)
            approx_cdf = cdf_from_lst(standin.laplace, t)
            assert approx_cdf == pytest.approx(true_cdf, abs=0.02)  # ... tight beyond

    def test_monte_carlo_mean_sanity(self, rng):
        lam = 0.5
        bp = MG1BusyPeriod(lam, Exponential(1.0))
        samples = simulate_busy_periods(lam, Exponential(1.0), rng, 30_000)
        assert samples.mean() == pytest.approx(bp.mean, rel=0.05)


class TestDiagnostics:
    def test_cs_cq_diagnostics(self):
        from repro.core import CsCqAnalysis, SystemParameters

        analysis = CsCqAnalysis(SystemParameters.from_loads(rho_s=1.0, rho_l=0.5))
        diag = analysis.diagnostics()
        assert diag["phases_per_level"] == 2 + diag["ph_l_phases"] + diag["ph_n1_phases"]
        assert 0.0 < diag["tail_spectral_radius"] < 1.0
        assert diag["p_setup_zero"] == pytest.approx(
            diag["region1"] / (diag["region1"] + diag["region2"])
        )

    def test_spectral_radius_grows_with_load(self):
        from repro.core import CsCqAnalysis, SystemParameters

        radii = [
            CsCqAnalysis(
                SystemParameters.from_loads(rho_s=r, rho_l=0.5)
            ).diagnostics()["tail_spectral_radius"]
            for r in (0.5, 1.0, 1.4)
        ]
        assert radii == sorted(radii)


class TestBatchMeans:
    def test_interval_contains_truth_for_iid(self, rng):
        from repro.simulation import batch_means_interval

        data = list(rng.exponential(2.0, size=20_000))
        ci = batch_means_interval(data, n_batches=20)
        assert ci.contains(2.0)

    def test_validation(self):
        from repro.simulation import batch_means_interval

        with pytest.raises(ValueError):
            batch_means_interval([1.0] * 10, n_batches=1)
        with pytest.raises(ValueError):
            batch_means_interval([1.0] * 10, n_batches=8)

    def test_on_simulation_samples(self):
        from repro.core import DedicatedAnalysis, SystemParameters
        from repro.simulation import batch_means_interval, simulate

        p = SystemParameters.from_loads(rho_s=0.7, rho_l=0.3)
        sim = simulate(
            "dedicated", p, seed=7, warmup_jobs=20_000, measured_jobs=200_000,
            keep_samples=True,
        )
        ci = batch_means_interval(list(sim.samples_short), n_batches=25)
        exact = DedicatedAnalysis(p).mean_response_time_short()
        # Batch means underestimate the width under autocorrelation, so be
        # generous: within 4 half-widths or 3%.
        assert abs(ci.mean - exact) < max(4 * ci.half_width, 0.03 * exact)
