"""Unit tests for experiment-harness formatting and small dataclasses."""

import pytest

from repro.experiments import (
    LimitingCaseResult,
    RuntimeComparison,
    ValidationRow,
    format_mg2sjf_rows,
    format_validation_rows,
)
from repro.experiments.mg2sjf import Mg2SjfRow


class TestValidationRow:
    def test_rel_error(self):
        row = ValidationRow("a", "cs-cq", "short", 0.5, 0.5, 2.0, 2.1)
        assert row.rel_error == pytest.approx(0.1 / 2.1)

    def test_formatting_summary_line(self):
        rows = [
            ValidationRow("a", "cs-cq", "short", 0.5, 0.5, 2.0, 2.01),
            ValidationRow("a", "cs-id", "long", 0.9, 0.3, 3.0, 3.2),
        ]
        text = format_validation_rows(rows)
        assert "max error" in text
        assert "never over 5%" in text

    def test_empty_rows(self):
        text = format_validation_rows([])
        assert "max error" not in text


class TestLimitingCaseResult:
    def test_rel_error(self):
        result = LimitingCaseResult("x", ours=1.01, exact=1.0)
        assert result.rel_error == pytest.approx(0.01)


class TestRuntimeComparison:
    def test_speedup(self):
        comparison = RuntimeComparison(
            analysis_points=10,
            analysis_seconds=0.1,
            simulation_points=1,
            simulation_seconds=5.0,
        )
        # per-point: 0.01s vs 5s -> 500x.
        assert comparison.speedup_per_point == pytest.approx(500.0)


class TestMg2SjfRow:
    def test_winner_flag_and_formatting(self):
        row = Mg2SjfRow(
            case="a", rho_s=0.8, rho_l=0.6,
            cs_cq_short=2.0, cs_cq_long=3.0,
            sjf_short=1.5, sjf_long=3.5,
            cs_cq_short_analytic=2.05,
        )
        assert row.sjf_wins_short
        text = format_mg2sjf_rows([row])
        assert "M/G/2/SJF wins on shorts at 1/1 points" in text
