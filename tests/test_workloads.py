"""Tests for workload cases and synthetic traces."""

import numpy as np
import pytest

from repro.workloads import (
    COXIAN_LONG_CASES,
    EXPONENTIAL_CASES,
    LONG_SCV_HIGH,
    TraceSpec,
    WorkloadCase,
    case_by_name,
    generate_trace,
    split_by_cutoff,
)


class TestWorkloadCase:
    def test_params_round_trip(self):
        case = WorkloadCase(name="x", mean_short=2.0, mean_long=5.0)
        p = case.params(1.0, 0.5)
        assert p.rho_s == pytest.approx(1.0)
        assert p.rho_l == pytest.approx(0.5)
        assert p.short_service.mean == pytest.approx(2.0)
        assert p.long_service.mean == pytest.approx(5.0)

    def test_label(self):
        case = WorkloadCase(name="y", mean_long=10.0, long_scv=8.0)
        assert "longs mean 10" in case.label()
        assert "C2=8" in case.label()

    def test_paper_cases(self):
        assert [c.name for c in EXPONENTIAL_CASES] == ["a", "b", "c"]
        a, b, c = EXPONENTIAL_CASES
        assert (a.mean_short, a.mean_long) == (1.0, 1.0)
        assert (b.mean_short, b.mean_long) == (1.0, 10.0)
        assert (c.mean_short, c.mean_long) == (10.0, 1.0)
        for case in COXIAN_LONG_CASES:
            assert case.long_scv == LONG_SCV_HIGH
            assert case.short_scv == 1.0

    def test_case_by_name(self):
        assert case_by_name("b").mean_long == 10.0
        assert case_by_name("b", coxian_longs=True).long_scv == LONG_SCV_HIGH
        with pytest.raises(KeyError):
            case_by_name("z")


class TestTraces:
    def test_generate_shapes(self, rng):
        trace = generate_trace(TraceSpec(), 1000, rng)
        assert trace.n_jobs == 1000
        assert np.all(np.diff(trace.arrival_times) >= 0)
        assert trace.is_short.dtype == bool

    def test_heavy_tail_mostly_short_jobs(self, rng):
        """'Many short jobs and just a few very long jobs'."""
        spec = TraceSpec(pareto_alpha=1.1, min_size=0.01, max_size=1000.0, cutoff=1.0)
        trace = generate_trace(spec, 20_000, rng)
        frac_short = trace.is_short.mean()
        assert frac_short > 0.9
        # ... yet the few long jobs carry a large share of the load.
        assert trace.load_long > 0.3 * (trace.load_short + trace.load_long)

    def test_split_summary(self, rng):
        trace = generate_trace(TraceSpec(), 5000, rng)
        short, long = split_by_cutoff(trace)
        assert short["n"] + long["n"] == 5000
        assert short["mean"] < long["mean"]

    def test_loads_positive(self, rng):
        trace = generate_trace(TraceSpec(arrival_rate=2.0), 2000, rng)
        assert trace.load_short > 0
        assert trace.load_long > 0

    def test_invalid_n(self, rng):
        with pytest.raises(ValueError):
            generate_trace(TraceSpec(), 0, rng)
