"""Tests for CS-ID with phase-type short service."""

import numpy as np
import pytest

from repro.core import (
    CsIdAnalysis,
    CsIdPhAnalysis,
    SystemParameters,
    UnstableSystemError,
    catch_phase_distribution,
    caught_short_remainder_moments,
)
from repro.distributions import Erlang, Exponential, PhaseType, coxian_from_mean_scv
from repro.simulation import simulate


class TestCatchPhase:
    def test_exponential_single_phase(self):
        eta = catch_phase_distribution(Exponential(2.0).as_phase_type(), 0.5)
        assert eta == pytest.approx(np.array([1.0]))

    def test_matches_transform_remainder_moments(self):
        """PH(eta, S) is the caught short's remainder — its moments must
        equal the transform-derived closed forms used by the long-host
        analysis (two independent derivations of the same object)."""
        for dist in (Erlang(3, 3.0), coxian_from_mean_scv(1.0, 4.0)):
            ph = dist.as_phase_type()
            eta = catch_phase_distribution(ph, 0.6)
            remainder = PhaseType(eta, ph.T)
            exact = caught_short_remainder_moments(dist, 0.6)
            for got, want in zip(remainder.moments(3), exact):
                assert got == pytest.approx(want, rel=1e-9)

    def test_sums_to_one(self):
        eta = catch_phase_distribution(Erlang(4, 4.0).as_phase_type(), 1.3)
        assert eta.sum() == pytest.approx(1.0)
        assert np.all(eta >= 0)

    def test_late_phases_favored_for_slow_arrivals(self):
        """With a tiny arrival rate the catch happens uniformly over the
        service, weighting later Erlang stages equally; with a huge rate
        the catch happens immediately, concentrating on stage 1."""
        ph = Erlang(3, 3.0).as_phase_type()
        slow = catch_phase_distribution(ph, 1e-6)
        fast = catch_phase_distribution(ph, 1e6)
        assert slow == pytest.approx(np.ones(3) / 3, abs=1e-4)
        assert fast[0] == pytest.approx(1.0, abs=1e-4)

    def test_invalid_lam(self):
        with pytest.raises(ValueError):
            catch_phase_distribution(Exponential(1.0).as_phase_type(), 0.0)


class TestExponentialReduction:
    @pytest.mark.parametrize("rho_s,rho_l", [(0.5, 0.3), (1.0, 0.5)])
    def test_reduces_to_published_analysis(self, rho_s, rho_l):
        p = SystemParameters.from_loads(rho_s=rho_s, rho_l=rho_l)
        base = CsIdAnalysis(p)
        general = CsIdPhAnalysis(p)
        assert general.mean_response_time_short() == pytest.approx(
            base.mean_response_time_short(), rel=1e-9
        )
        assert general.mean_response_time_long() == pytest.approx(
            base.mean_response_time_long(), rel=1e-9
        )


class TestPhShorts:
    def test_idle_probability_consistency(self):
        """QBD marginal must match the exact renewal cycle for PH shorts."""
        p = SystemParameters.from_loads(rho_s=0.8, rho_l=0.4, short_scv=0.5)
        analysis = CsIdPhAnalysis(p)
        assert analysis.prob_long_host_idle() == pytest.approx(
            analysis.cycle.prob_idle, rel=1e-8
        )

    def test_variability_ordering(self):
        values = {}
        for scv in (0.5, 1.0, 4.0):
            p = SystemParameters.from_loads(rho_s=0.9, rho_l=0.5, short_scv=scv)
            values[scv] = CsIdPhAnalysis(p).mean_response_time_short()
        assert values[0.5] < values[1.0] < values[4.0]

    def test_stability_enforced(self):
        with pytest.raises(UnstableSystemError):
            CsIdPhAnalysis(
                SystemParameters.from_loads(rho_s=1.45, rho_l=0.4, short_scv=0.5)
            )

    @pytest.mark.slow
    @pytest.mark.parametrize("scv", [0.5, 2.0])
    def test_matches_simulation(self, scv):
        p = SystemParameters.from_loads(rho_s=0.9, rho_l=0.5, short_scv=scv)
        analysis = CsIdPhAnalysis(p)
        sim = simulate("cs-id", p, seed=71, warmup_jobs=40_000, measured_jobs=300_000)
        assert analysis.mean_response_time_short() == pytest.approx(
            sim.mean_response_short, rel=0.04
        )
        assert analysis.mean_response_time_long() == pytest.approx(
            sim.mean_response_long, rel=0.02
        )

    def test_long_side_exact_for_general_shorts(self):
        """The long response is the renewal cycle's (exact given moments);
        it must be invariant to how the short host is modeled."""
        p = SystemParameters.from_loads(rho_s=0.9, rho_l=0.5, short_scv=2.0)
        from repro.core import LongHostCycle

        assert CsIdPhAnalysis(p).mean_response_time_long() == pytest.approx(
            LongHostCycle(p).mean_response_time_long()
        )
