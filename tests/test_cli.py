"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_analyze(self, capsys):
        assert main(["analyze", "--rho-s", "1.0", "--rho-l", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "CS-CQ" in out and "unstable" in out  # Dedicated at rho_s=1

    def test_analyze_ph_shorts(self, capsys):
        assert main(
            ["analyze", "--rho-s", "0.8", "--rho-l", "0.4", "--short-scv", "2.0"]
        ) == 0
        out = capsys.readouterr().out
        assert "phase-type generalizations" in out
        assert "CS-ID" in out and "CS-CQ" in out

    def test_simulate(self, capsys):
        code = main(
            [
                "simulate", "--rho-s", "0.5", "--rho-l", "0.3",
                "--policy", "cs-cq", "--jobs", "5000", "--warmup", "500",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "E[T_short]" in out

    def test_stability(self, capsys):
        assert main(["stability", "--steps", "4"]) == 0
        out = capsys.readouterr().out
        assert "1.6180" in out  # golden ratio at rho_l = 0

    def test_validate(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert out.count("[ok") == 6

    def test_figure3(self, capsys):
        assert main(["figure", "3"]) == 0
        out = capsys.readouterr().out
        assert "Stability condition" in out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["nope"])
