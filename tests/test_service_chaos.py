"""Chaos harness for the query service.

One batch, concurrency >= 4, with crash / hang / perturb / numerical
faults injected at once, asserting the service's three survival
guarantees end to end:

1. **No query is lost** — exactly one answer per submitted query, every
   one either answered or explicitly rejected.
2. **Deadlines hold** — every answered query finished inside its budget
   (plus the bookkeeping slack the answer contracts allow).
3. **Fidelity is honest** — a corrupted exact solve (``perturb``) must
   degrade to a lower rung, never ship mis-tagged as ``exact``; the
   ``service-answer`` contracts hold for every answer; and the manifest's
   shed/degraded/retried/tripped totals match the telemetry counters.

This is the test the CI ``service-smoke`` job runs.
"""

import pytest

from repro.contracts import evaluate
from repro.orchestration import inject_faults
from repro.robustness import CircuitBreaker
from repro.service import QueryService, ScenarioQuery
from repro.service.chaos import reset_crash_counts
from repro.telemetry import registry

#: Matches contracts/answers.py: the deadline bounds solver work; final
#: bookkeeping may add this much.
DEADLINE_SLACK = 0.25

DEFAULT_DEADLINE = 5.0


def _case(name="a", **overrides):
    fields = dict(rho_s=0.5, rho_l=0.5, case={"name": name})
    fields.update(overrides)
    return ScenarioQuery(**fields)


def _chaos_batch():
    """16 queries: clean, hanging, crashing, silently-corrupted, broken
    region, and deliberate overload at the tail."""
    clean = [
        _case(label=f"clean-{i}", rho_s=0.3 + 0.05 * i, threshold=2.5)
        for i in range(4)
    ]
    hang = [
        _case(label=f"hang-{i}", rho_s=0.55 + 0.01 * i, deadline=0.8)
        for i in range(2)
    ]
    crash = [
        _case(label=f"crash-{i}", rho_s=0.65 + 0.01 * i) for i in range(2)
    ]
    perturb = [
        _case(label=f"perturb-{i}", rho_s=0.45 + 0.01 * i) for i in range(2)
    ]
    # Three failures in one 0.1-load bucket: enough to trip the breaker.
    trip = [
        _case(label=f"trip-{i}", rho_s=0.85 + 0.01 * i, rho_l=0.85)
        for i in range(3)
    ]
    shed = [_case(label=f"shed-{i}", rho_s=0.35 + 0.01 * i) for i in range(3)]
    return clean + hang + crash + perturb + trip + shed


@pytest.fixture()
def chaos_run(tmp_path):
    registry().reset()
    reset_crash_counts()
    queries = _chaos_batch()
    breaker = CircuitBreaker(failure_threshold=3, cooldown=60.0)
    with inject_faults(
        hang=["hang-"],
        crash=["crash-"],
        perturb=["perturb-"],
        numerical=["trip-"],
        hang_seconds=3.0,
        perturb_factor=100.0,
    ):
        with QueryService(
            workers=4,
            queue_limit=len(queries) - 3,  # exactly the shed-* tail overflows
            default_deadline=DEFAULT_DEADLINE,
            breaker=breaker,
            name="chaos",
        ) as service:
            answers = service.run_batch(queries)
            manifest = service.build_manifest(answers)
            path = service.write_manifest(answers, tmp_path / "SERVICE_chaos.json")
    registry().reset()
    reset_crash_counts()
    return queries, answers, manifest, path


def _by_label(answers):
    return {a.label: a for a in answers}


class TestSurvival:
    def test_no_query_lost(self, chaos_run):
        queries, answers, _, _ = chaos_run
        assert len(answers) == len(queries)
        assert sorted(a.label for a in answers) == sorted(
            q.resolved_label() for q in queries
        )
        assert all(a.status in ("answered", "rejected") for a in answers)

    def test_every_query_finished_within_its_deadline(self, chaos_run):
        _, answers, _, _ = chaos_run
        for answer in answers:
            budget = answer.deadline if answer.deadline is not None else DEFAULT_DEADLINE
            assert answer.elapsed <= budget + DEADLINE_SLACK, answer.label

    def test_overload_was_shed_with_retry_hints(self, chaos_run):
        _, answers, _, _ = chaos_run
        by_label = _by_label(answers)
        for i in range(3):
            shed = by_label[f"shed-{i}"]
            assert shed.status == "rejected"
            assert shed.error["type"] == "ServiceOverloadError"
            assert "retry_after" in shed.error["context"]


class TestGracefulDegradation:
    def test_clean_queries_answer_exact(self, chaos_run):
        _, answers, _, _ = chaos_run
        by_label = _by_label(answers)
        for i in range(4):
            assert by_label[f"clean-{i}"].fidelity == "exact"

    def test_hangs_degrade_within_the_deadline(self, chaos_run):
        _, answers, _, _ = chaos_run
        by_label = _by_label(answers)
        for i in range(2):
            answer = by_label[f"hang-{i}"]
            assert answer.status == "answered"
            assert answer.fidelity in ("truncated", "bound")
            assert answer.elapsed <= 0.8 + DEADLINE_SLACK
            assert answer.attempts[0]["outcome"] in ("timeout", "skipped")

    def test_transient_crashes_recover_via_retry(self, chaos_run):
        _, answers, _, _ = chaos_run
        by_label = _by_label(answers)
        for i in range(2):
            answer = by_label[f"crash-{i}"]
            assert answer.status == "answered"
            assert answer.fidelity == "exact"
            assert answer.retries >= 1

    def test_breaker_tripped_for_the_failing_region(self, chaos_run):
        _, answers, manifest, _ = chaos_run
        assert manifest["totals"]["tripped"] >= 1
        by_label = _by_label(answers)
        for i in range(3):
            answer = by_label[f"trip-{i}"]
            assert answer.status == "answered"
            assert answer.degraded
        states = manifest["breaker"]["keys"]
        assert any(entry["state"] == "open" for entry in states.values())


class TestHonesty:
    def test_corrupted_solves_are_not_served_as_exact(self, chaos_run):
        _, answers, _, _ = chaos_run
        by_label = _by_label(answers)
        for i in range(2):
            answer = by_label[f"perturb-{i}"]
            assert answer.status == "answered"
            assert answer.fidelity != "exact", "mis-tagged corrupted answer"
            exact_attempt = answer.attempts[0]
            assert exact_attempt["rung"] == "exact"
            assert exact_attempt["outcome"] == "failed"
            assert exact_attempt["error"]["type"] == "ContractViolation"

    def test_answer_contracts_hold_for_every_answer(self, chaos_run):
        _, answers, _, _ = chaos_run
        for answer in answers:
            for result in evaluate("service-answer", answer):
                assert result.passed, (
                    f"{answer.label}: {result.name}: {result.detail}"
                )

    def test_manifest_counts_match_telemetry_counters(self, chaos_run):
        _, _, manifest, _ = chaos_run
        totals = manifest["totals"]
        telemetry = manifest["telemetry"]
        assert totals["submitted"] == telemetry["service.submitted"] == 16
        assert totals["answered"] == telemetry["service.answered"]
        assert totals["shed"] == telemetry["service.shed"] == 3
        assert totals["rejected"] == telemetry["service.rejected"] == 0
        assert totals["degraded"] == telemetry["service.degraded"]
        assert totals["retried"] == telemetry["service.retried"]
        assert totals["retried"] >= 2  # one retry per transient crash
        assert totals["degraded"] >= 7  # hangs + perturbs + tripped region

    def test_manifest_artifact_is_parseable_and_complete(self, chaos_run):
        import json

        queries, _, manifest, path = chaos_run
        on_disk = json.loads(path.read_text())
        assert on_disk["totals"] == manifest["totals"]
        assert len(on_disk["queries"]) == len(queries)
        assert {row["label"] for row in on_disk["queries"]} == {
            q.resolved_label() for q in queries
        }
