"""retry_with_backoff and BackoffPolicy: schedules, jitter, exhaustion."""

from random import Random

import pytest

from repro.robustness import (
    BackoffPolicy,
    RetryExhaustedError,
    ValidationError,
    retry_with_backoff,
)


class TestBackoffPolicy:
    def test_deterministic_schedule_grows_exponentially(self):
        policy = BackoffPolicy(base=0.1, cap=10.0, factor=2.0, jitter="none")
        assert [policy.delay(a) for a in (1, 2, 3, 4)] == [0.1, 0.2, 0.4, 0.8]

    def test_deterministic_schedule_caps(self):
        policy = BackoffPolicy(base=1.0, cap=3.0, factor=2.0, jitter="none")
        assert policy.delay(5) == 3.0

    def test_decorrelated_jitter_stays_in_band(self):
        policy = BackoffPolicy(base=0.05, cap=2.0)
        rng = Random(7)
        previous = None
        for attempt in range(1, 30):
            delay = policy.delay(attempt, previous, rng)
            lo = policy.base
            hi = min(policy.cap, 3.0 * (previous if previous else policy.base))
            assert lo <= delay <= hi
            previous = delay

    def test_decorrelated_jitter_never_exceeds_cap(self):
        policy = BackoffPolicy(base=0.5, cap=1.0)
        rng = Random(3)
        assert all(policy.delay(a, 1.0, rng) <= 1.0 for a in range(1, 50))

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base=2.0, cap=1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter="full")


class TestRetryWithBackoff:
    def _flaky(self, fail_times, exc=RuntimeError):
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] <= fail_times:
                raise exc(f"transient #{calls['n']}")
            return calls["n"]

        return fn, calls

    def test_succeeds_after_transient_failures(self):
        fn, calls = self._flaky(2)
        slept = []
        result = retry_with_backoff(
            fn,
            policy=BackoffPolicy(base=0.1, cap=1.0, jitter="none", max_attempts=4),
            sleep=slept.append,
        )
        assert result == 3
        assert calls["n"] == 3
        assert slept == [0.1, 0.2]

    def test_first_try_success_never_sleeps(self):
        slept = []
        assert retry_with_backoff(lambda: 42, sleep=slept.append) == 42
        assert slept == []

    def test_exhaustion_raises_typed_error_with_attempt_log(self):
        fn, _ = self._flaky(99)
        with pytest.raises(RetryExhaustedError) as info:
            retry_with_backoff(
                fn,
                policy=BackoffPolicy(base=0.0, cap=0.0, jitter="none", max_attempts=3),
                description="flaky op",
                sleep=lambda _t: None,
            )
        err = info.value
        assert "flaky op" in str(err)
        assert len(err.attempts) == 3
        assert [a["attempt"] for a in err.attempts] == [1, 2, 3]
        assert all("transient" in a["error"] for a in err.attempts)
        assert isinstance(err.__cause__, RuntimeError)

    def test_non_retryable_error_propagates_immediately(self):
        fn, calls = self._flaky(5, exc=ValidationError)
        with pytest.raises(ValidationError):
            retry_with_backoff(fn, retry_on=ArithmeticError, sleep=lambda _t: None)
        assert calls["n"] == 1

    def test_give_up_after_fails_fast_instead_of_sleeping(self):
        fn, calls = self._flaky(99)
        slept = []
        with pytest.raises(RetryExhaustedError) as info:
            retry_with_backoff(
                fn,
                policy=BackoffPolicy(base=5.0, cap=5.0, jitter="none", max_attempts=4),
                give_up_after=1.0,  # the 5 s backoff would blow the budget
                sleep=slept.append,
            )
        assert calls["n"] == 1
        assert slept == []
        assert info.value.attempts[0]["gave_up"] == "deadline"

    def test_on_retry_hook_sees_each_backoff(self):
        fn, _ = self._flaky(2)
        seen = []
        retry_with_backoff(
            fn,
            policy=BackoffPolicy(base=0.1, cap=1.0, jitter="none", max_attempts=4),
            sleep=lambda _t: None,
            on_retry=lambda attempt, error, delay: seen.append((attempt, delay)),
        )
        assert seen == [(1, 0.1), (2, 0.2)]
