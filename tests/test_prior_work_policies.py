"""Tests for the Round-Robin, Shortest-Queue and TAGS simulators."""

import pytest

from repro.core import SystemParameters
from repro.queueing import Mm1Queue, MmcQueue
from repro.simulation import JobClass, simulate, simulate_trace
from repro.simulation.policies import TagsSimulation


class TestRoundRobin:
    def test_trace_alternation(self):
        # Four simultaneous unit jobs: RR puts 2 on each host back to back.
        trace = [(0.0, JobClass.SHORT, 1.0)] * 4
        result = simulate_trace("round-robin", trace)
        # Hosts each serve two jobs: responses 1, 1, 2, 2.
        assert result.mean_response_short == pytest.approx(1.5)

    @pytest.mark.slow
    def test_poisson_split_is_two_mm1s(self):
        """RR thins Poisson arrivals into (Erlang-2) streams; with class-
        blind routing each host is an E2/M/1 — better than M/M/1 at the
        same load but worse than M/M/2."""
        p = SystemParameters.from_loads(rho_s=0.8, rho_l=0.8)
        rr = simulate("round-robin", p, seed=7, warmup_jobs=20_000, measured_jobs=200_000)
        overall = (
            rr.mean_response_short * rr.n_measured_short
            + rr.mean_response_long * rr.n_measured_long
        ) / (rr.n_measured_short + rr.n_measured_long)
        mm1 = Mm1Queue(0.8, 1.0).mean_response_time()
        mm2 = MmcQueue(1.6, 1.0, 2).mean_response_time()
        assert mm2 < overall < mm1


class TestShortestQueue:
    def test_trace_balances(self):
        trace = [
            (0.0, JobClass.SHORT, 5.0),  # host 0
            (0.1, JobClass.SHORT, 5.0),  # host 1 (host 0 busier)
            (0.2, JobClass.SHORT, 1.0),  # both equal -> host 0 queue
        ]
        result = simulate_trace("shortest-queue", trace)
        # Third job waits behind the first: starts at 5.0, ends 6.0.
        assert result.sim_time == pytest.approx(6.0)

    @pytest.mark.slow
    def test_close_to_mgk_under_exponential(self):
        p = SystemParameters.from_loads(rho_s=0.7, rho_l=0.7)
        sq = simulate("shortest-queue", p, seed=11, warmup_jobs=20_000, measured_jobs=200_000)
        mgk = simulate("mgk", p, seed=11, warmup_jobs=20_000, measured_jobs=200_000)

        def overall(r):
            total = r.n_measured_short + r.n_measured_long
            return (
                r.mean_response_short * r.n_measured_short
                + r.mean_response_long * r.n_measured_long
            ) / total

        assert overall(mgk) < overall(sq) < 1.25 * overall(mgk)


class TestTags:
    def test_small_job_unaffected(self):
        trace = [(0.0, JobClass.SHORT, 0.5)]
        sim = TagsSimulation(
            SystemParameters.from_loads(rho_s=0.1, rho_l=0.1),
            trace=trace,
            warmup_jobs=0,
            measured_jobs=1,
            cutoff=1.0,
        )
        result = sim.run()
        assert result.mean_response_short == pytest.approx(0.5)

    def test_big_job_restarts(self):
        # Size 3 with cutoff 1: runs 1 at host 0 (killed), then 3 at host 1.
        trace = [(0.0, JobClass.LONG, 3.0)]
        sim = TagsSimulation(
            SystemParameters.from_loads(rho_s=0.1, rho_l=0.1),
            trace=trace,
            warmup_jobs=0,
            measured_jobs=1,
            cutoff=1.0,
        )
        result = sim.run()
        assert result.mean_response_long == pytest.approx(1.0 + 3.0)

    def test_wasted_work_visible(self):
        # Two big jobs: the second's host-0 slice waits for the first's.
        trace = [(0.0, JobClass.LONG, 2.0), (0.0, JobClass.LONG, 2.0)]
        sim = TagsSimulation(
            SystemParameters.from_loads(rho_s=0.1, rho_l=0.1),
            trace=trace,
            warmup_jobs=0,
            measured_jobs=2,
            cutoff=1.0,
        )
        result = sim.run()
        # Job 1: slice [0,1), restart at host 1 [1,3): response 3.
        # Job 2: slice [1,2), queues behind job 1 at host 1, runs [3,5): 5.
        assert result.mean_response_long == pytest.approx(4.0)

    def test_invalid_cutoff(self):
        with pytest.raises(ValueError):
            TagsSimulation(
                SystemParameters.from_loads(rho_s=0.1, rho_l=0.1), cutoff=0.0
            )

    def test_registry_exposes_all_policies(self):
        from repro.simulation.policies import POLICIES

        for name in ("round-robin", "shortest-queue", "tags"):
            assert name in POLICIES
