"""Property suite: the batched tensor QBD backend vs the scalar sweep path.

The batched backend's contract (see :mod:`repro.perf.batched`) is that a
sweep solved through stacked LAPACK calls is *observably identical* to the
scalar per-point sweep: values agree to 1e-10 relative, the NaN pattern
(stability truncation) is bit-identical, and every cache namespace — in
memory and in the persistent store — ends up with exactly the same keys,
so warm runs and ``repro check`` cannot tell the two paths apart.
"""

import warnings

import numpy as np
import pytest

import repro.perf.batched as batched_mod
from repro.experiments.figures import _POLICY_LABELS, _policy_point_values
from repro.perf import sweep_cache
from repro.perf.batched import batched_figure_values, batched_sweep_values
from repro.perf.store import PERSISTED_NAMESPACES, ResultStore
from repro.workloads import COXIAN_LONG_CASES, EXPONENTIAL_CASES

#: Cache namespaces whose key sets must match between the two paths.
_PARITY_NAMESPACES = sorted(PERSISTED_NAMESPACES - {"service-answer"})

#: rho_s grid reaching past the Dedicated (1.0) boundary so the sweep has
#: a nontrivial NaN pattern, but below the CS-CQ boundary 2 - rho_l.
_RHO_S_GRID = (0.2, 0.6, 0.9, 1.2)


def _grids():
    """(id, case, load_pairs, job_class) rows mirroring figures 4-6."""
    rows = []
    for case in EXPONENTIAL_CASES:
        for job_class in ("short", "long"):
            pairs = [(rho_s, 0.5) for rho_s in _RHO_S_GRID]
            rows.append((f"fig4-{case.name}-{job_class}", case, pairs, job_class))
    coxian_b = COXIAN_LONG_CASES[1]
    for job_class in ("short", "long"):
        pairs = [(rho_s, 0.5) for rho_s in (0.3, 0.8, 1.1)]
        rows.append((f"fig5-b-{job_class}", coxian_b, pairs, job_class))
    # Figure-6 style: fixed rho_s = 1.5, sweep rho_l toward the CS-CQ
    # asymptote at 2 - rho_s = 0.5.
    pairs = [(1.5, rho_l) for rho_l in (0.1, 0.3, 0.45)]
    rows.append(("fig6-a-short", COXIAN_LONG_CASES[0], pairs, "short"))
    # Near-boundary points: rho_s at 90% and 99% of the CS-CQ stability
    # boundary, where conditioning gates and fallbacks are exercised.
    near = [
        (fraction * (2.0 - rho_l), rho_l)
        for rho_l in (0.3, 0.8)
        for fraction in (0.9, 0.99)
    ]
    rows.append(("near-boundary-short", EXPONENTIAL_CASES[1], near, "short"))
    return rows


def _scalar_sweep(case, load_pairs, job_class):
    """The scalar reference: one `_policy_point_values` call per point."""
    out = {label: np.full(len(load_pairs), np.nan) for label in _POLICY_LABELS}
    for i, (rho_s, rho_l) in enumerate(load_pairs):
        values, _ = _policy_point_values(case.params(rho_s, rho_l), job_class)
        for label in _POLICY_LABELS:
            out[label][i] = values[label]
    return out


def _namespace_keys(cache):
    """Per-namespace key sets of a sweep cache's in-memory entries."""
    keys = {}
    for namespace, key in cache._entries:
        keys.setdefault(namespace, set()).add(key)
    return keys


def _store_entries(store):
    """Per-namespace entry filename (digest) sets of a persistent store."""
    entries = {}
    for path in store.root.glob("*/??/*.entry"):
        entries.setdefault(path.parent.parent.name, set()).add(path.name)
    return entries


def _run_both(case, load_pairs, job_class, monkeypatch, scalar_store=None,
              batched_store=None):
    """One grid through both paths, returning (values, keys) per path."""
    monkeypatch.setenv("REPRO_BATCHED_STRICT", "1")
    # The process-wide fits memo skips recomputation (and therefore the
    # ph-fit/busy-moments cache traffic) in scopes after the first; clear
    # it so this scope's namespace accounting is complete.
    monkeypatch.setattr(batched_mod, "_FITS_CACHE", {})
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        with sweep_cache(store=scalar_store) as cache:
            scalar = _scalar_sweep(case, load_pairs, job_class)
            scalar_keys = _namespace_keys(cache)
        with sweep_cache(store=batched_store) as cache:
            batched, _ = batched_sweep_values(case, load_pairs, job_class)
            batched_keys = _namespace_keys(cache)
    return scalar, batched, scalar_keys, batched_keys


GRIDS = _grids()


@pytest.mark.parametrize(
    "case, load_pairs, job_class",
    [row[1:] for row in GRIDS],
    ids=[row[0] for row in GRIDS],
)
class TestBatchedScalarParity:
    def test_values_and_nan_pattern(self, case, load_pairs, job_class, monkeypatch):
        scalar, batched, _, _ = _run_both(case, load_pairs, job_class, monkeypatch)
        for label in _POLICY_LABELS:
            s, b = scalar[label], batched[label]
            # Stability truncation must be bit-identical, not just close.
            assert np.array_equal(np.isnan(s), np.isnan(b)), label
            finite = ~np.isnan(s)
            if finite.any():
                rel = np.abs(b[finite] - s[finite]) / np.maximum(
                    np.abs(s[finite]), 1e-300
                )
                assert rel.max() <= 1e-10, (label, rel.max())

    def test_cache_key_sets_match(self, case, load_pairs, job_class, monkeypatch):
        _, _, scalar_keys, batched_keys = _run_both(
            case, load_pairs, job_class, monkeypatch
        )
        for namespace in _PARITY_NAMESPACES:
            assert scalar_keys.get(namespace, set()) == batched_keys.get(
                namespace, set()
            ), namespace


class TestStoreDigestParity:
    def test_entry_digests_match_across_paths(self, tmp_path, monkeypatch):
        # The store digests every key independently of the cache object,
        # so identical per-namespace entry filenames prove the two paths
        # persist under identical keys (payload hashes are wall-time
        # volatile and deliberately not compared).
        case = EXPONENTIAL_CASES[1]
        pairs = [(rho_s, 0.5) for rho_s in _RHO_S_GRID]
        scalar_store = ResultStore(tmp_path / "scalar")
        batched_store = ResultStore(tmp_path / "batched")
        _run_both(
            case,
            pairs,
            "short",
            monkeypatch,
            scalar_store=scalar_store,
            batched_store=batched_store,
        )
        scalar_entries = _store_entries(scalar_store)
        batched_entries = _store_entries(batched_store)
        assert scalar_entries.keys() == batched_entries.keys()
        for namespace, entries in scalar_entries.items():
            assert entries == batched_entries[namespace], namespace
        assert "qbd-solution" in scalar_entries
        assert "r-matrix" in scalar_entries


class TestFigurePool:
    def test_pooled_rows_equal_row_by_row(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCHED_STRICT", "1")
        case = EXPONENTIAL_CASES[0]
        rows = [
            (case, [(rho_s, 0.5) for rho_s in _RHO_S_GRID], jc)
            for jc in ("short", "long")
        ]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with sweep_cache():
                pooled = batched_figure_values(rows)
            row_by_row = []
            with sweep_cache():
                for row in rows:
                    values, _ = batched_sweep_values(*row)
                    row_by_row.append(values)
        for pooled_row, single_row in zip(pooled, row_by_row):
            for label in _POLICY_LABELS:
                np.testing.assert_array_equal(pooled_row[label], single_row[label])

    def test_pool_deduplicates_repeated_points(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCHED_STRICT", "1")
        case = EXPONENTIAL_CASES[0]
        pairs = [(0.6, 0.5), (0.9, 0.5), (0.6, 0.5)]  # index 2 repeats 0
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with sweep_cache() as cache:
                values, diags = batched_sweep_values(
                    case, pairs, "short", with_diagnostics=True
                )
        assert values["CS-Central-Q"][2] == values["CS-Central-Q"][0]
        # The repeated point registers as a cache hit, exactly like the
        # scalar path's second get_or_compute on the same key.
        assert cache.hits["analysis-solution"] >= 1
        assert diags[2] is not None
        assert diags[2]["CS-Central-Q"]["cache_hit"] is True
        assert diags[0]["CS-Central-Q"]["cache_hit"] is False

    def test_second_sweep_is_all_cache_hits(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCHED_STRICT", "1")
        case = EXPONENTIAL_CASES[0]
        pairs = [(0.4, 0.5), (0.8, 0.5)]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with sweep_cache() as cache:
                first, _ = batched_sweep_values(case, pairs, "short")
                misses_after_first = dict(cache.misses)
                second, _ = batched_sweep_values(case, pairs, "short")
        for label in _POLICY_LABELS:
            np.testing.assert_array_equal(first[label], second[label])
        # The second sweep added no analysis-solution misses.
        assert cache.misses["analysis-solution"] == misses_after_first[
            "analysis-solution"
        ]
