"""Run-level deadline budgets and crash-respawn backoff in the runner."""

import json

import pytest

from repro.orchestration import DeadlineBudget, SweepPoint, SweepRunner, inject_faults
from repro.robustness import BackoffPolicy, DeadlineExceededError
from repro.telemetry import registry


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestDeadlineBudget:
    def test_unlimited_budget_never_expires(self):
        budget = DeadlineBudget(None)
        assert budget.remaining() == float("inf")
        assert not budget.expired
        assert budget.require(1e9) == float("inf")

    def test_accounting_with_stepped_clock(self):
        clock = FakeClock()
        budget = DeadlineBudget(2.0, clock=clock)
        clock.now += 0.5
        assert budget.elapsed() == pytest.approx(0.5)
        assert budget.remaining() == pytest.approx(1.5)
        assert not budget.expired
        clock.now += 2.0
        assert budget.remaining() == 0.0
        assert budget.expired

    def test_require_raises_typed_error_with_context(self):
        clock = FakeClock()
        budget = DeadlineBudget(1.0, clock=clock)
        clock.now += 0.9
        with pytest.raises(DeadlineExceededError) as info:
            budget.require(0.5, stage="exact")
        assert info.value.context["stage"] == "exact"
        assert info.value.context["budget"] == 1.0
        assert info.value.context["needed"] == 0.5

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError):
            DeadlineBudget(0.0)


def _sleepy_points(n, sleep):
    return [
        SweepPoint(
            task="demo-point", kwargs={"x": i, "sleep": sleep}, label=f"slow/x={i}"
        )
        for i in range(n)
    ]


class TestRunnerDeadline:
    def test_inline_run_sheds_remaining_points(self, tmp_path):
        manifest_path = tmp_path / "MANIFEST.json"
        runner = SweepRunner(
            workers=0, deadline=0.35, manifest_path=manifest_path
        )
        outcomes = runner.run(_sleepy_points(10, sleep=0.2))
        statuses = [o.status for o in outcomes]
        # Every point accounted for: a prefix ran, the rest were shed.
        assert len(outcomes) == 10
        assert statuses[0] == "ok"
        shed = [o for o in outcomes if o.status == "timeout"]
        assert shed, "deadline should shed at least the tail"
        assert all(o.error["type"] == "RunDeadlineExceeded" for o in shed)
        manifest = json.loads(manifest_path.read_text())
        assert manifest["interrupted"] == "deadline"

    def test_pool_run_sheds_remaining_points(self, tmp_path):
        runner = SweepRunner(workers=2, deadline=0.5, timeout=5.0)
        outcomes = runner.run(_sleepy_points(12, sleep=0.3))
        assert len(outcomes) == 12
        assert any(o.status == "ok" for o in outcomes)
        shed = [o for o in outcomes if o.status == "timeout"]
        assert shed
        assert all(o.error["type"] == "RunDeadlineExceeded" for o in shed)

    def test_no_deadline_means_no_shedding(self):
        runner = SweepRunner(workers=0)
        outcomes = runner.run(_sleepy_points(3, sleep=0.0))
        assert all(o.status == "ok" for o in outcomes)


class TestRespawnBackoff:
    def test_crashing_points_back_off_the_slot(self):
        registry().reset()
        before = registry().counter("orchestration.respawn.backoff")
        runner = SweepRunner(
            workers=1,
            respawn_backoff=BackoffPolicy(
                base=0.01, cap=0.05, jitter="none", max_attempts=1_000_000
            ),
        )
        points = [
            SweepPoint(task="demo-point", kwargs={"x": i}, label=f"crashy/x={i}")
            for i in range(3)
        ]
        with inject_faults(crash=["crashy/"]):
            outcomes = runner.run(points)
        assert [o.status for o in outcomes] == ["failed"] * 3
        assert all(o.error["type"] == "WorkerCrashed" for o in outcomes)
        assert registry().counter("orchestration.respawn.backoff") - before == 3

    def test_success_resets_the_backoff_state(self):
        runner = SweepRunner(
            workers=1,
            respawn_backoff=BackoffPolicy(
                base=0.01, cap=0.05, jitter="none", max_attempts=1_000_000
            ),
        )
        crash = [SweepPoint(task="demo-point", kwargs={"x": 0}, label="boom/0")]
        ok = [SweepPoint(task="demo-point", kwargs={"x": 1}, label="fine/1")]
        with inject_faults(crash=["boom/"]):
            (first,) = runner.run(crash)
        assert first.status == "failed"
        (second,) = runner.run(ok)
        assert second.status == "ok"

    def test_backoff_disabled_restores_immediate_respawn(self):
        runner = SweepRunner(workers=1, respawn_backoff=None)
        points = [
            SweepPoint(task="demo-point", kwargs={"x": i}, label=f"crashy2/x={i}")
            for i in range(2)
        ]
        with inject_faults(crash=["crashy2/"]):
            outcomes = runner.run(points)
        assert [o.status for o in outcomes] == ["failed"] * 2
