"""Tests for the classical queueing formulas."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import Deterministic, Exponential, coxian_from_mean_scv
from repro.queueing import Mg1Queue, Mg1SetupQueue, Mm1Queue, MmcQueue, mixture_setup_moments


class TestMm1:
    def test_textbook_values(self):
        q = Mm1Queue(0.5, 1.0)
        assert q.mean_number_in_system() == pytest.approx(1.0)
        assert q.mean_response_time() == pytest.approx(2.0)
        assert q.mean_waiting_time() == pytest.approx(1.0)
        assert q.prob_n(0) == pytest.approx(0.5)

    def test_littles_law(self):
        q = Mm1Queue(0.8, 1.0)
        assert q.mean_number_in_system() == pytest.approx(0.8 * q.mean_response_time())

    def test_unstable_rejected(self):
        with pytest.raises(ValueError):
            Mm1Queue(1.0, 1.0)


class TestMg1:
    def test_reduces_to_mm1(self):
        mg1 = Mg1Queue(0.7, Exponential(1.0))
        mm1 = Mm1Queue(0.7, 1.0)
        assert mg1.mean_response_time() == pytest.approx(mm1.mean_response_time())

    def test_md1_is_half_mm1_waiting(self):
        # M/D/1 waiting time is half of M/M/1's at equal load.
        lam = 0.6
        md1 = Mg1Queue(lam, Deterministic(1.0))
        mm1 = Mg1Queue(lam, Exponential(1.0))
        assert md1.mean_waiting_time() == pytest.approx(mm1.mean_waiting_time() / 2)

    def test_waiting_grows_with_variability(self):
        lam = 0.5
        low = Mg1Queue(lam, coxian_from_mean_scv(1.0, 1.0))
        high = Mg1Queue(lam, coxian_from_mean_scv(1.0, 8.0))
        assert high.mean_waiting_time() > low.mean_waiting_time()
        # P-K is linear in E[X^2]: ratio of waits = ratio of (1+C^2)/2.
        assert high.mean_waiting_time() / low.mean_waiting_time() == pytest.approx(4.5)

    def test_idle_probability(self):
        q = Mg1Queue(0.3, Exponential(0.5))
        assert q.prob_idle() == pytest.approx(1 - 0.6)

    def test_busy_period_accessor(self):
        q = Mg1Queue(0.5, Exponential(1.0))
        assert q.busy_period().mean == pytest.approx(2.0)

    @given(lam=st.floats(0.05, 0.9))
    @settings(max_examples=40, deadline=None)
    def test_property_littles_law(self, lam):
        q = Mg1Queue(lam, Exponential(1.0))
        assert q.mean_number_in_system() == pytest.approx(lam * q.mean_response_time())


class TestMg1Setup:
    def test_zero_setup_is_plain_mg1(self):
        service = Exponential(1.0)
        with_setup = Mg1SetupQueue(0.5, service, (0.0, 0.0))
        plain = Mg1Queue(0.5, service)
        assert with_setup.mean_waiting_time() == pytest.approx(plain.mean_waiting_time())

    def test_takagi_formula_by_hand(self):
        lam = 0.5
        service = Exponential(1.0)
        setup = (0.5, 0.5)  # e.g. Exp(2) setup
        q = Mg1SetupQueue(lam, service, setup)
        pk = lam * 2.0 / (2 * (1 - 0.5))
        extra = (2 * 0.5 + lam * 0.5) / (2 * (1 + lam * 0.5))
        assert q.mean_waiting_time() == pytest.approx(pk + extra)

    def test_setup_increases_waiting(self):
        service = Exponential(1.0)
        base = Mg1SetupQueue(0.5, service, (0.0, 0.0)).mean_waiting_time()
        with_setup = Mg1SetupQueue(0.5, service, (0.3, 0.2)).mean_waiting_time()
        assert with_setup > base

    def test_mixture_setup_moments(self):
        m1, m2 = mixture_setup_moments(0.75, Exponential(2.0))
        assert m1 == pytest.approx(0.25 * 0.5)
        assert m2 == pytest.approx(0.25 * 0.5)

    def test_infeasible_setup_rejected(self):
        with pytest.raises(ValueError):
            Mg1SetupQueue(0.5, Exponential(1.0), (1.0, 0.5))

    def test_mixture_setup_validation(self):
        with pytest.raises(ValueError):
            mixture_setup_moments(1.5, Exponential(1.0))


class TestMmc:
    def test_mm1_special_case(self):
        mmc = MmcQueue(0.7, 1.0, 1)
        mm1 = Mm1Queue(0.7, 1.0)
        assert mmc.mean_response_time() == pytest.approx(mm1.mean_response_time())
        assert mmc.erlang_c() == pytest.approx(0.7)  # P(wait) = rho in M/M/1

    def test_mm2_textbook(self):
        # M/M/2 with a = lam/mu: P0 = (1-rho)/(1+rho) with rho = a/2.
        lam, mu = 1.0, 1.0
        q = MmcQueue(lam, mu, 2)
        rho = lam / (2 * mu)
        assert q.prob_empty() == pytest.approx((1 - rho) / (1 + rho))

    def test_pooling_beats_single_server(self):
        # M/M/2 at per-server load rho beats M/M/1 at the same rho.
        mm2 = MmcQueue(1.6, 1.0, 2)
        mm1 = Mm1Queue(0.8, 1.0)
        assert mm2.mean_response_time() < mm1.mean_response_time()

    def test_unstable_rejected(self):
        with pytest.raises(ValueError):
            MmcQueue(2.0, 1.0, 2)

    def test_invalid_c(self):
        with pytest.raises(ValueError):
            MmcQueue(1.0, 1.0, 0)
