"""Tests for the long-job response-time *distributions* (beyond the paper).

The setup queue's waiting transform comes from a level-crossing argument
(see docs/derivations.md and repro.queueing.mg1_setup); these tests pin it
against Pollaczek-Khinchine in the no-setup limit, against the closed-form
means, and against simulated percentiles.
"""

import numpy as np
import pytest

from repro.core import CsCqAnalysis, CsIdAnalysis, SystemParameters
from repro.distributions import Exponential
from repro.queueing import Mg1Queue, Mg1SetupQueue
from repro.simulation import simulate


class TestSetupQueueTransform:
    def test_zero_setup_reduces_to_pk(self):
        service = Exponential(1.0)
        queue = Mg1SetupQueue(0.6, service, (0.0, 0.0), setup_lst=lambda s: 1.0)
        plain = Mg1Queue(0.6, service)
        for t in (0.5, 2.0, 8.0):
            assert queue.waiting_time_cdf(t) == pytest.approx(
                plain.waiting_time_cdf(t), abs=1e-6
            )

    def test_transform_mean_matches_takagi(self):
        """Numerically differentiate the transform; compare with the
        closed-form Takagi mean (two independent derivations)."""
        service = Exponential(1.0)
        nu = 2.0
        setup_lst = lambda s: 0.3 + 0.7 * nu / (nu + s)  # noqa: E731
        moments = (0.7 / nu, 2 * 0.7 / nu**2)
        queue = Mg1SetupQueue(0.5, service, moments, setup_lst=setup_lst)
        h = 1e-6
        numeric_mean = -(
            complex(queue.waiting_time_lst(h)).real
            - complex(queue.waiting_time_lst(-h)).real
        ) / (2 * h)
        assert numeric_mean == pytest.approx(queue.mean_waiting_time(), rel=1e-4)

    def test_atom_at_zero(self):
        service = Exponential(1.0)
        nu = 2.0
        p_zero_setup = 0.4
        setup_lst = lambda s: p_zero_setup + (1 - p_zero_setup) * nu / (nu + s)  # noqa: E731
        moments = ((1 - p_zero_setup) / nu, 2 * (1 - p_zero_setup) / nu**2)
        queue = Mg1SetupQueue(0.5, service, moments, setup_lst=setup_lst)
        # P(W = 0) = p0 * P(setup = 0).
        assert queue.waiting_time_cdf(0.0) == pytest.approx(
            queue.prob_no_wait * p_zero_setup, rel=1e-6
        )

    def test_requires_transform(self):
        queue = Mg1SetupQueue(0.5, Exponential(1.0), (0.1, 0.1))
        with pytest.raises(ValueError):
            queue.waiting_time_lst(1.0)

    def test_cdf_monotone(self):
        nu = 2.0
        setup_lst = lambda s: nu / (nu + s)  # noqa: E731
        queue = Mg1SetupQueue(
            0.7, Exponential(1.0), (1 / nu, 2 / nu**2), setup_lst=setup_lst
        )
        values = [queue.response_time_cdf(t) for t in (0.5, 1, 2, 5, 15, 40)]
        assert values == sorted(values)
        assert values[-1] > 0.999


@pytest.mark.slow
class TestAgainstSimulation:
    def test_cs_cq_long_distribution(self):
        p = SystemParameters.from_loads(rho_s=1.0, rho_l=0.5)
        analysis = CsCqAnalysis(p)
        sim = simulate(
            "cs-cq", p, seed=91, warmup_jobs=30_000, measured_jobs=300_000,
            keep_samples=True,
        )
        for q in (50, 90, 99):
            t_sim = sim.percentile_long(q)
            assert analysis.long_response_time_cdf(t_sim) == pytest.approx(
                q / 100.0, abs=0.012
            )

    def test_cs_id_long_distribution(self):
        p = SystemParameters.from_loads(rho_s=1.0, rho_l=0.5)
        analysis = CsIdAnalysis(p)
        sim = simulate(
            "cs-id", p, seed=91, warmup_jobs=30_000, measured_jobs=300_000,
            keep_samples=True,
        )
        for q in (50, 90):
            t_sim = sim.percentile_long(q)
            assert analysis.long_response_time_cdf(t_sim) == pytest.approx(
                q / 100.0, abs=0.012
            )

    def test_transform_mean_consistency(self):
        """Integrating the analytic complementary CDF recovers the mean."""
        p = SystemParameters.from_loads(rho_s=0.9, rho_l=0.5)
        analysis = CsCqAnalysis(p)
        grid = np.linspace(1e-3, 80.0, 4000)
        ccdf = np.array([1 - analysis.long_response_time_cdf(t) for t in grid])
        assert float(np.trapezoid(ccdf, grid)) == pytest.approx(
            analysis.mean_response_time_long(), rel=2e-3
        )
