"""Tests for Exponential and Erlang distributions."""

import math

import numpy as np
import pytest

from repro.distributions import Erlang, Exponential


class TestExponential:
    def test_moments(self):
        e = Exponential(2.0)
        assert e.mean == pytest.approx(0.5)
        assert e.moment(2) == pytest.approx(0.5)
        assert e.moment(3) == pytest.approx(6 / 8)
        assert e.scv == pytest.approx(1.0)
        assert e.variance == pytest.approx(0.25)

    def test_from_mean(self):
        assert Exponential.from_mean(4.0).rate == pytest.approx(0.25)

    def test_laplace(self):
        e = Exponential(3.0)
        assert e.laplace(0.0) == pytest.approx(1.0)
        assert e.laplace(3.0) == pytest.approx(0.5)

    def test_laplace_derivative_consistency(self):
        # -d/ds L(s) at 0 ~= mean via finite differences.
        e = Exponential(1.7)
        h = 1e-6
        deriv = (e.laplace(h) - e.laplace(-h)) / (2 * h)
        assert -deriv == pytest.approx(e.mean, rel=1e-6)

    def test_sampling_matches_moments(self, rng):
        e = Exponential(0.5)
        samples = e.sample(rng, 200_000)
        assert samples.mean() == pytest.approx(e.mean, rel=0.02)
        assert np.mean(samples**2) == pytest.approx(e.moment(2), rel=0.05)

    def test_as_phase_type(self):
        ph = Exponential(2.5).as_phase_type()
        assert ph.mean == pytest.approx(0.4)
        assert ph.laplace(1.0) == pytest.approx(2.5 / 3.5)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Exponential(0.0)
        with pytest.raises(ValueError):
            Exponential(-1.0)
        with pytest.raises(ValueError):
            Exponential.from_mean(0.0)

    def test_invalid_moment_order(self):
        with pytest.raises(ValueError):
            Exponential(1.0).moment(0)


class TestErlang:
    def test_moments(self):
        er = Erlang(3, 3.0)  # mean 1, scv 1/3
        assert er.mean == pytest.approx(1.0)
        assert er.scv == pytest.approx(1 / 3)
        assert er.moment(2) == pytest.approx(3 * 4 / 9)

    def test_from_mean(self):
        er = Erlang.from_mean(4, 2.0)
        assert er.mean == pytest.approx(2.0)
        assert er.scv == pytest.approx(0.25)

    def test_shape_one_is_exponential(self):
        er = Erlang(1, 2.0)
        e = Exponential(2.0)
        for k in (1, 2, 3):
            assert er.moment(k) == pytest.approx(e.moment(k))
        assert er.laplace(1.3) == pytest.approx(e.laplace(1.3))

    def test_laplace_vs_phase_type(self):
        er = Erlang(4, 2.0)
        ph = er.as_phase_type()
        for s in (0.1, 1.0, 5.0):
            assert complex(ph.laplace(s)).real == pytest.approx(
                complex(er.laplace(s)).real, rel=1e-10
            )

    def test_phase_type_moments(self):
        er = Erlang(5, 2.5)
        ph = er.as_phase_type()
        for k in (1, 2, 3, 4):
            assert ph.moment(k) == pytest.approx(er.moment(k), rel=1e-10)

    def test_sampling(self, rng):
        er = Erlang(2, 2.0)
        samples = er.sample(rng, 100_000)
        assert samples.mean() == pytest.approx(1.0, rel=0.02)

    def test_invalid(self):
        with pytest.raises(ValueError):
            Erlang(0, 1.0)
        with pytest.raises(ValueError):
            Erlang(2, -1.0)
