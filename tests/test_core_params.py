"""Tests for SystemParameters."""

import pytest

from repro.core import SystemParameters
from repro.distributions import Coxian, Exponential, coxian_from_mean_scv


class TestFromLoads:
    def test_loads_round_trip(self):
        p = SystemParameters.from_loads(rho_s=1.2, rho_l=0.5)
        assert p.rho_s == pytest.approx(1.2)
        assert p.rho_l == pytest.approx(0.5)
        assert p.lam_s == pytest.approx(1.2)
        assert p.lam_l == pytest.approx(0.5)

    def test_mean_sizes(self):
        p = SystemParameters.from_loads(rho_s=1.0, rho_l=0.5, mean_short=10.0, mean_long=2.0)
        assert p.lam_s == pytest.approx(0.1)
        assert p.lam_l == pytest.approx(0.25)
        assert p.short_service.mean == pytest.approx(10.0)
        assert p.long_service.mean == pytest.approx(2.0)

    def test_scv_selects_distribution(self):
        p = SystemParameters.from_loads(rho_s=0.5, rho_l=0.5, long_scv=8.0)
        assert isinstance(p.short_service, Exponential)
        assert isinstance(p.long_service, Coxian)
        assert p.long_service.scv == pytest.approx(8.0)

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            SystemParameters.from_loads(rho_s=-0.1, rho_l=0.5)


class TestMuS:
    def test_exponential_short_ok(self):
        p = SystemParameters.from_loads(rho_s=0.5, rho_l=0.5)
        assert p.mu_s == pytest.approx(1.0)

    def test_nonexponential_short_rejected(self):
        p = SystemParameters(
            lam_s=0.5,
            lam_l=0.5,
            short_service=coxian_from_mean_scv(1.0, 4.0),
            long_service=Exponential(1.0),
        )
        with pytest.raises(TypeError):
            _ = p.mu_s

    def test_describe(self):
        p = SystemParameters.from_loads(rho_s=0.5, rho_l=0.25)
        text = p.describe()
        assert "rho_s=0.5" in text and "rho_l=0.25" in text

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            SystemParameters(-1.0, 0.5, Exponential(1.0), Exponential(1.0))
