"""Tests for trace-driven simulation (replay mode)."""

import numpy as np
import pytest

from repro.simulation import JobClass, simulate_trace
from repro.workloads import TraceSpec, generate_trace


class TestReplayBasics:
    def test_single_job(self):
        result = simulate_trace(
            "dedicated", [(0.0, JobClass.SHORT, 2.5)], warmup_jobs=0
        )
        assert result.mean_response_short == pytest.approx(2.5)
        assert result.n_measured_short == 1
        assert result.n_measured_long == 0

    def test_two_jobs_fcfs_same_host(self):
        trace = [
            (0.0, JobClass.SHORT, 2.0),
            (1.0, JobClass.SHORT, 2.0),
        ]
        result = simulate_trace("dedicated", trace)
        # Job 1: response 2; job 2: waits 1, response 3.
        assert result.mean_response_short == pytest.approx(2.5)

    def test_cycle_stealing_uses_idle_long_host(self):
        trace = [
            (0.0, JobClass.SHORT, 2.0),
            (0.5, JobClass.SHORT, 2.0),  # long host idle -> response 2.0
        ]
        dedicated = simulate_trace("dedicated", trace)
        cs_id = simulate_trace("cs-id", trace)
        assert cs_id.mean_response_short < dedicated.mean_response_short
        assert cs_id.mean_response_short == pytest.approx(2.0)

    def test_cs_cq_renaming_on_trace(self):
        # Long arrives while both hosts serve shorts: waits for the first
        # of the two to finish (renaming), not for "its" host.
        trace = [
            (0.0, JobClass.SHORT, 4.0),
            (0.0, JobClass.SHORT, 1.0),
            (0.5, JobClass.LONG, 1.0),
        ]
        result = simulate_trace("cs-cq", trace)
        # Short #2 finishes at t=1.0; long runs 1.0-2.0: response 1.5.
        assert result.mean_response_long == pytest.approx(1.5)

    def test_warmup_discards_jobs(self):
        trace = [(float(i), JobClass.SHORT, 0.5) for i in range(10)]
        result = simulate_trace("mgk", trace, warmup_jobs=6)
        assert result.n_measured_short == 4

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            simulate_trace("dedicated", [])

    def test_decreasing_times_rejected(self):
        trace = [(1.0, JobClass.SHORT, 1.0), (0.5, JobClass.SHORT, 1.0)]
        with pytest.raises(ValueError):
            simulate_trace("dedicated", trace)


class TestReplaySynthetic:
    def test_replay_matches_poisson_statistics(self, rng):
        """Replaying a Poisson-generated trace through the same policy
        should agree with the params-driven simulation in distribution."""
        from repro.core import SystemParameters
        from repro.simulation import simulate

        spec = TraceSpec(
            arrival_rate=1.5, pareto_alpha=2.5, min_size=0.1, max_size=5.0, cutoff=1.0
        )
        trace = generate_trace(spec, 60_000, rng)
        replay = simulate_trace("cs-cq", trace, warmup_jobs=5_000)
        assert replay.n_measured_short + replay.n_measured_long == 55_000
        assert replay.mean_response_short > 0
        assert replay.mean_response_long > 0

    def test_deterministic_replay(self, rng):
        spec = TraceSpec(arrival_rate=2.0)
        trace = generate_trace(spec, 5_000, rng)
        r1 = simulate_trace("cs-id", trace)
        r2 = simulate_trace("cs-id", trace)
        assert r1.mean_response_short == r2.mean_response_short
        assert r1.sim_time == r2.sim_time

    def test_iter_jobs_round_trip(self, rng):
        trace = generate_trace(TraceSpec(), 100, rng)
        triples = list(trace.iter_jobs())
        assert len(triples) == 100
        times = [t for t, _, _ in triples]
        assert times == sorted(times)
        assert all(s > 0 for _, _, s in triples)
