"""Tests for Laplace inversion and waiting-time distributions."""

import math

import numpy as np
import pytest

from repro.distributions import Deterministic, Erlang, Exponential, Hyperexponential
from repro.queueing import Mg1Queue, MmcQueue
from repro.simulation.policies import DedicatedSimulation
from repro.transforms import cdf_from_lst, invert_transform


class TestInversion:
    def test_exponential_density(self):
        # L{2 e^{-2t}}(s) = 2/(s+2).
        for t in (0.1, 0.5, 2.0):
            value = invert_transform(lambda s: 2.0 / (s + 2.0), t)
            assert value == pytest.approx(2.0 * math.exp(-2.0 * t), abs=1e-7)

    def test_cdf_from_lst_exponential(self):
        e = Exponential(1.5)
        for t in (0.2, 1.0, 3.0):
            assert cdf_from_lst(e.laplace, t) == pytest.approx(
                1.0 - math.exp(-1.5 * t), abs=1e-7
            )

    def test_cdf_from_lst_erlang(self):
        er = Erlang(3, 3.0)
        from scipy.stats import gamma

        for t in (0.3, 1.0, 2.5):
            assert cdf_from_lst(er.laplace, t) == pytest.approx(
                float(gamma.cdf(t, a=3, scale=1 / 3)), abs=1e-7
            )

    def test_invalid_t(self):
        with pytest.raises(ValueError):
            invert_transform(lambda s: 1.0 / s, 0.0)


class TestMg1WaitingDistribution:
    def test_mm1_waiting_cdf_closed_form(self):
        # M/M/1: P(W <= t) = 1 - rho e^{-(mu - lam) t}.
        lam, mu = 0.7, 1.0
        q = Mg1Queue(lam, Exponential(mu))
        for t in (0.0, 0.5, 2.0, 5.0):
            exact = 1.0 - lam / mu * math.exp(-(mu - lam) * t)
            assert q.waiting_time_cdf(t) == pytest.approx(exact, abs=1e-6)

    def test_waiting_cdf_monotone_and_bounded(self):
        q = Mg1Queue(0.6, Hyperexponential.balanced_means(1.0, 8.0))
        grid = [0.1, 0.5, 1.0, 3.0, 10.0, 40.0, 120.0]
        values = [q.waiting_time_cdf(t) for t in grid]
        assert all(0.0 <= v <= 1.0 for v in values)
        assert values == sorted(values)
        assert values[-1] > 0.999  # the C^2=8 tail is heavy but exponential-ish

    def test_atom_at_zero(self):
        q = Mg1Queue(0.4, Exponential(1.0))
        assert q.waiting_time_cdf(0.0) == pytest.approx(0.6)

    def test_response_cdf_mm1_is_exponential(self):
        # M/M/1 response time ~ Exp(mu - lam).
        lam, mu = 0.5, 1.0
        q = Mg1Queue(lam, Exponential(mu))
        for t in (0.5, 2.0, 6.0):
            assert q.response_time_cdf(t) == pytest.approx(
                1.0 - math.exp(-(mu - lam) * t), abs=1e-6
            )

    def test_md1_mean_from_cdf(self):
        """Integrate the complementary CDF and recover the P-K mean."""
        q = Mg1Queue(0.5, Deterministic(1.0))
        grid = np.linspace(1e-3, 30.0, 4000)
        ccdf = np.array([1.0 - q.waiting_time_cdf(t) for t in grid])
        mean_numeric = float(np.trapezoid(ccdf, grid))
        assert mean_numeric == pytest.approx(q.mean_waiting_time(), rel=1e-3)

    @pytest.mark.slow
    def test_cdf_matches_simulated_percentiles(self):
        """Dedicated host 0 is an M/G/1 of shorts; its simulated response
        percentiles must agree with the inverted P-K transform."""
        from repro.core import SystemParameters

        p = SystemParameters.from_loads(rho_s=0.7, rho_l=0.3)
        sim = DedicatedSimulation(
            p, seed=41, warmup_jobs=20_000, measured_jobs=300_000, keep_samples=True
        ).run()
        q = Mg1Queue(p.lam_s, p.short_service)
        for quantile in (50, 90, 99):
            t_sim = sim.percentile_short(quantile)
            assert q.response_time_cdf(t_sim) == pytest.approx(
                quantile / 100.0, abs=0.01
            )


class TestMmcWaitingDistribution:
    def test_erlang_c_tail(self):
        q = MmcQueue(1.2, 1.0, 2)
        assert q.waiting_time_cdf(0.0) == pytest.approx(1.0 - q.erlang_c())
        assert q.waiting_time_cdf(10.0) > 0.999

    def test_percentile_requires_samples(self):
        from repro.core import SystemParameters
        from repro.simulation import simulate

        p = SystemParameters.from_loads(rho_s=0.5, rho_l=0.3)
        result = simulate("dedicated", p, seed=1, warmup_jobs=10, measured_jobs=100)
        with pytest.raises(ValueError):
            result.percentile_short(90)
