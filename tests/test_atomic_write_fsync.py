"""Directory-fsync durability of the atomic writers (injectable hook)."""

import os

import pytest

from repro.robustness import atomic_write_json, fsync_directory
from repro.robustness import atomic_write as atomic_write_module
from repro.robustness.atomic_write import atomic_write_text


@pytest.fixture
def fsync_spy(monkeypatch):
    """Record every fd the module-level fsync hook is called with."""
    calls = []

    def spy(fd):
        calls.append(os.fstat(fd).st_ino)
        return os.fsync(fd)

    monkeypatch.setattr(atomic_write_module, "_fsync", spy)
    return calls


class TestDirectoryFsync:
    def test_write_text_fsyncs_the_parent_directory(self, tmp_path, fsync_spy):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "payload")
        assert target.read_text() == "payload"
        # The hook saw the parent directory's inode after the rename.
        assert os.stat(tmp_path).st_ino in fsync_spy

    def test_write_json_fsyncs_the_parent_directory(self, tmp_path, fsync_spy):
        atomic_write_json(tmp_path / "out.json", {"a": 1})
        assert os.stat(tmp_path).st_ino in fsync_spy

    def test_fsync_directory_targets_the_given_directory(self, tmp_path, fsync_spy):
        fsync_directory(tmp_path)
        assert fsync_spy == [os.stat(tmp_path).st_ino]

    def test_fsync_failure_degrades_gracefully(self, tmp_path, monkeypatch):
        """Filesystems that refuse directory fsync must not fail the write."""

        def refuse(fd):
            raise OSError("fsync not supported here")

        monkeypatch.setattr(atomic_write_module, "_fsync", refuse)
        target = tmp_path / "out.txt"
        atomic_write_text(target, "still written")
        assert target.read_text() == "still written"

    def test_missing_directory_is_a_noop(self, tmp_path, fsync_spy):
        fsync_directory(tmp_path / "does-not-exist")
        assert fsync_spy == []


class TestMkstempFdHygiene:
    """Regression: ``os.fdopen`` failing must not leak the mkstemp fd.

    The raw descriptor from ``tempfile.mkstemp`` is only wrapped in a
    file object by ``os.fdopen``; if that wrapping itself raises, nothing
    owns the fd — historically it leaked for the life of the process
    (the temp *file* was unlinked, the descriptor was not).
    """

    def test_fd_closed_when_fdopen_fails(self, tmp_path, monkeypatch):
        import tempfile

        captured = {}
        real_mkstemp = tempfile.mkstemp

        def spy_mkstemp(*args, **kwargs):
            fd, name = real_mkstemp(*args, **kwargs)
            captured["fd"] = fd
            return fd, name

        def failing_fdopen(fd, *args, **kwargs):
            raise OSError("simulated fdopen failure")

        monkeypatch.setattr(tempfile, "mkstemp", spy_mkstemp)
        monkeypatch.setattr(os, "fdopen", failing_fdopen)
        with pytest.raises(OSError, match="simulated fdopen failure"):
            atomic_write_text(tmp_path / "out.txt", "payload")

        # The descriptor must be closed: fstat on a closed fd raises EBADF.
        with pytest.raises(OSError):
            os.fstat(captured["fd"])
        # ...and the temp file was unlinked, leaving the directory clean.
        assert list(tmp_path.iterdir()) == []

    def test_write_failure_also_closes_and_cleans_up(self, tmp_path, monkeypatch):
        """The pre-existing cleanup path (fdopen succeeded, write failed)
        must keep working alongside the fix."""
        import tempfile

        captured = {}
        real_mkstemp = tempfile.mkstemp

        def spy_mkstemp(*args, **kwargs):
            fd, name = real_mkstemp(*args, **kwargs)
            captured["fd"] = fd
            return fd, name

        def failing_replace(src, dst):
            raise OSError("simulated replace failure")

        monkeypatch.setattr(tempfile, "mkstemp", spy_mkstemp)
        monkeypatch.setattr(os, "replace", failing_replace)
        with pytest.raises(OSError, match="simulated replace failure"):
            atomic_write_text(tmp_path / "out.txt", "payload")
        with pytest.raises(OSError):
            os.fstat(captured["fd"])
        assert list(tmp_path.iterdir()) == []
