"""Tests for the brute-force truncated CS-CQ chain."""

import pytest

from repro.core import CsCqTruncatedChain, SystemParameters, UnstableSystemError
from repro.queueing import MmcQueue


class TestTruncatedChain:
    def test_state_count(self):
        p = SystemParameters.from_loads(rho_s=0.5, rho_l=0.3)
        chain = CsCqTruncatedChain(p, max_short=10, max_long=5)
        # (n_s,0): 11; (n_s,n_l,L): 11*5; (n_s>=2,n_l,SS): 9*5.
        assert chain.n_states == 11 + 55 + 45

    def test_requires_exponential(self):
        p = SystemParameters.from_loads(rho_s=0.5, rho_l=0.3, long_scv=8.0)
        with pytest.raises(TypeError):
            CsCqTruncatedChain(p)

    def test_rejects_unstable(self):
        with pytest.raises(UnstableSystemError):
            CsCqTruncatedChain(SystemParameters.from_loads(rho_s=1.6, rho_l=0.5))

    def test_rejects_tiny_bounds(self):
        p = SystemParameters.from_loads(rho_s=0.5, rho_l=0.3)
        with pytest.raises(ValueError):
            CsCqTruncatedChain(p, max_short=2, max_long=1)

    def test_mm2_limit(self):
        """With almost no longs the chain reduces to M/M/2 of shorts."""
        p = SystemParameters.from_loads(rho_s=0.9, rho_l=1e-9)
        result = CsCqTruncatedChain(p, max_short=80, max_long=3).solve()
        exact = MmcQueue(p.lam_s, 1.0, 2).mean_response_time()
        assert result.mean_response_time_short == pytest.approx(exact, rel=1e-5)

    def test_truncation_mass_reported(self):
        p = SystemParameters.from_loads(rho_s=1.2, rho_l=0.5)
        tight = CsCqTruncatedChain(p, max_short=15, max_long=8).solve()
        loose = CsCqTruncatedChain(p, max_short=60, max_long=25).solve()
        assert tight.truncation_mass > loose.truncation_mass

    def test_tight_truncation_biases_low(self):
        """The paper's point: truncation drops mass from the 2D-infinite
        tail, underestimating response times at high load."""
        p = SystemParameters.from_loads(rho_s=1.3, rho_l=0.5)
        tight = CsCqTruncatedChain(p, max_short=12, max_long=6).solve()
        loose = CsCqTruncatedChain(p, max_short=80, max_long=40).solve()
        assert tight.mean_response_time_short < loose.mean_response_time_short
