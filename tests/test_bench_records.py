"""Tests for bench record naming, discovery and baseline pairing.

The regression gate pairs current records with committed baselines purely
by filename (``BENCH_<name>[.<variant>][.quick].json``), so the naming
functions must round-trip exactly and discovery must flag — never skip —
anything it cannot parse.
"""

import json

import pytest

from repro.perf.bench import (
    discover_records,
    load_baseline,
    parse_record_filename,
    record_filename,
    write_bench_json,
)


class TestRecordFilename:
    @pytest.mark.parametrize(
        "name, variant, quick, expected",
        [
            ("figure4", None, False, "BENCH_figure4.json"),
            ("figure4", None, True, "BENCH_figure4.quick.json"),
            ("figure4", "batched", False, "BENCH_figure4.batched.json"),
            ("figure4", "batched", True, "BENCH_figure4.batched.quick.json"),
        ],
    )
    def test_round_trip(self, name, variant, quick, expected):
        filename = record_filename(name, variant, quick)
        assert filename == expected
        assert parse_record_filename(filename) == (name, variant, quick)

    def test_variant_must_be_identifier(self):
        with pytest.raises(ValueError):
            record_filename("figure4", "")
        with pytest.raises(ValueError):
            record_filename("figure4", "has-dash")
        with pytest.raises(ValueError):
            # "quick" as a variant would collide with the quick marker.
            record_filename("figure4", "quick")

    @pytest.mark.parametrize(
        "filename",
        [
            "BENCH_.json",  # empty name
            "BENCH_a.b.c.d.json",  # too many markers
            "BENCH_a.batched.extra.json",  # two non-quick markers
            "BENCH_a.quick.batched.json",  # quick not last
            "BENCH_a..quick.json",  # empty variant
            "NOTBENCH_a.json",
            "BENCH_a.txt",
        ],
    )
    def test_unparseable_filenames_return_none(self, filename):
        assert parse_record_filename(filename) is None


class TestDiscoverRecords:
    def test_discovery_is_deterministic_and_flags_strays(self, tmp_path):
        for filename in (
            "BENCH_figure4.json",
            "BENCH_figure4.batched.quick.json",
            "BENCH_bench_figure4.json",  # stale legacy twin: parses (name
            # "bench_figure4") so it pairs — and fails — loudly downstream
            "BENCH_figure4.batched.extra.json",  # unparseable
        ):
            (tmp_path / filename).write_text("{}")
        (tmp_path / "unrelated.json").write_text("{}")  # ignored: no BENCH_ prefix
        records, unparseable = discover_records(tmp_path)
        assert [(name, variant, quick) for name, variant, quick, _ in records] == [
            ("bench_figure4", None, False),
            ("figure4", "batched", True),
            ("figure4", None, False),
        ]
        assert [path.name for path in unparseable] == [
            "BENCH_figure4.batched.extra.json"
        ]


class TestBaselinePairing:
    def _write(self, path, payload):
        path.write_text(json.dumps(payload))

    def test_exact_variant_preferred_over_scalar(self, tmp_path):
        self._write(tmp_path / "BENCH_figure4.json", {"who": "scalar"})
        self._write(tmp_path / "BENCH_figure4.batched.json", {"who": "batched"})
        assert load_baseline("figure4", False, tmp_path, "batched")["who"] == "batched"
        assert load_baseline("figure4", False, tmp_path, None)["who"] == "scalar"

    def test_variant_falls_back_to_scalar_anchor(self, tmp_path):
        # A fresh variant gates against the committed scalar trajectory —
        # this fallback is how the batched backend's speedup is recorded.
        self._write(tmp_path / "BENCH_figure4.json", {"who": "scalar"})
        assert load_baseline("figure4", False, tmp_path, "batched")["who"] == "scalar"

    def test_missing_baseline_is_none_not_a_guess(self, tmp_path):
        self._write(tmp_path / "BENCH_figure4.quick.json", {"who": "quick"})
        # A full-grid record must not pair with a quick baseline.
        assert load_baseline("figure4", False, tmp_path) is None

    def test_write_uses_canonical_name(self, tmp_path):
        path = write_bench_json(
            {"name": "figure4", "variant": "batched", "quick": True, "x": 1},
            tmp_path,
        )
        assert path.name == "BENCH_figure4.batched.quick.json"
        assert json.loads(path.read_text())["x"] == 1
