"""Tests for the CS-ID analysis."""

import pytest

from repro.core import (
    CsIdAnalysis,
    LongHostCycle,
    SystemParameters,
    UnstableSystemError,
    caught_short_remainder_moments,
)
from repro.distributions import Erlang, Exponential
from repro.queueing import Mg1Queue


class TestCaughtShortRemainder:
    def test_exponential_is_memoryless(self):
        """For Exp(mu_s) shorts the remainder is Exp(mu_s) again."""
        mu_s = 1.7
        moms = caught_short_remainder_moments(Exponential(mu_s), lam_l=0.6)
        exact = Exponential(mu_s).moments(3)
        for got, want in zip(moms, exact):
            assert got == pytest.approx(want, rel=1e-10)

    def test_erlang_remainder_shorter_than_full(self):
        """For low-variability shorts the caught remainder is short."""
        service = Erlang(4, 4.0)  # mean 1
        m1, _, _ = caught_short_remainder_moments(service, lam_l=0.5)
        assert 0 < m1 < service.mean

    def test_moments_feasible(self):
        m1, m2, m3 = caught_short_remainder_moments(Erlang(2, 2.0), lam_l=0.3)
        assert m2 >= m1 * m1
        assert m3 * m1 >= m2 * m2 * (1 - 1e-9)

    def test_invalid_lam(self):
        with pytest.raises(ValueError):
            caught_short_remainder_moments(Exponential(1.0), lam_l=0.0)


class TestLongHostCycle:
    def test_idle_probability_no_longs(self):
        """At rho_l = 0: P(idle) = 1/(1+rho_s)."""
        p = SystemParameters.from_loads(rho_s=0.8, rho_l=0.0)
        assert LongHostCycle(p).prob_idle == pytest.approx(1 / 1.8)

    def test_idle_probability_no_shorts(self):
        """At rho_s = 0: the host is a plain M/G/1, idle 1 - rho_l."""
        p = SystemParameters.from_loads(rho_s=0.0, rho_l=0.6)
        assert LongHostCycle(p).prob_idle == pytest.approx(0.4)

    def test_setup_prob_zero_in_lam_s_zero_limit(self):
        p = SystemParameters.from_loads(rho_s=1e-12, rho_l=0.6)
        assert LongHostCycle(p).prob_setup_zero == pytest.approx(1.0)

    def test_long_response_matches_mg1_without_shorts(self):
        p = SystemParameters.from_loads(rho_s=1e-12, rho_l=0.6, long_scv=8.0)
        cycle = LongHostCycle(p)
        exact = Mg1Queue(p.lam_l, p.long_service).mean_response_time()
        assert cycle.mean_response_time_long() == pytest.approx(exact, rel=1e-9)

    def test_unstable_longs_rejected(self):
        with pytest.raises(UnstableSystemError):
            LongHostCycle(SystemParameters.from_loads(rho_s=0.5, rho_l=1.0))

    def test_works_with_overloaded_shorts(self):
        """The long host is autonomous; shorts may be unstable."""
        p = SystemParameters.from_loads(rho_s=5.0, rho_l=0.5)
        assert LongHostCycle(p).mean_response_time_long() > 0


class TestCsIdAnalysis:
    def test_internal_consistency_idle_probability(self):
        """QBD phase marginal must reproduce the renewal-cycle idle prob."""
        for rho_s, rho_l in [(0.5, 0.3), (1.0, 0.5), (1.2, 0.2)]:
            p = SystemParameters.from_loads(rho_s=rho_s, rho_l=rho_l)
            a = CsIdAnalysis(p)
            assert a.prob_long_host_idle() == pytest.approx(
                a.cycle.prob_idle, rel=1e-8
            )

    def test_paper_headline_point(self):
        """Paper Figure 4(a): at rho_s=1, rho_l=0.5 CS-ID gives T_S ~ 4,
        and the long penalty is ~25% over Dedicated's T_L = 2."""
        p = SystemParameters.from_loads(rho_s=1.0, rho_l=0.5)
        a = CsIdAnalysis(p)
        assert a.mean_response_time_short() == pytest.approx(4.0, abs=0.5)
        assert a.mean_response_time_long() == pytest.approx(2.5, rel=1e-6)

    def test_beats_dedicated_for_shorts(self):
        from repro.core import DedicatedAnalysis

        p = SystemParameters.from_loads(rho_s=0.9, rho_l=0.5)
        assert (
            CsIdAnalysis(p).mean_response_time_short()
            < DedicatedAnalysis(p).mean_response_time_short()
        )

    def test_stability_wider_than_dedicated(self):
        p = SystemParameters.from_loads(rho_s=1.15, rho_l=0.3)
        assert CsIdAnalysis(p).mean_response_time_short() > 0

    def test_unstable_beyond_boundary(self):
        with pytest.raises(UnstableSystemError):
            CsIdAnalysis(SystemParameters.from_loads(rho_s=1.45, rho_l=0.3))

    def test_littles_law(self):
        p = SystemParameters.from_loads(rho_s=0.8, rho_l=0.5)
        a = CsIdAnalysis(p)
        assert a.mean_number_short() == pytest.approx(
            p.lam_s * a.mean_response_time_short()
        )
        assert a.mean_number_long() == pytest.approx(
            p.lam_l * a.mean_response_time_long()
        )

    def test_general_longs_supported(self):
        p = SystemParameters.from_loads(rho_s=0.9, rho_l=0.5, long_scv=8.0)
        a = CsIdAnalysis(p)
        assert a.mean_response_time_short() > 0
        assert a.mean_response_time_long() > 0
