"""Tests for the numerical guards and their wiring through the stack."""

import numpy as np
import pytest

from repro.core import SystemParameters
from repro.distributions import Exponential, fit_phase_type
from repro.markov import Ctmc, QbdProcess
from repro.robustness import (
    IllConditionedError,
    NearBoundaryWarning,
    ValidationError,
    check_conditioning,
    condition_number,
    ensure_finite_array,
    ensure_finite_scalar,
    ensure_no_material_negatives,
    ensure_nonnegative_scalar,
    ensure_rate_block,
    spectral_radius,
)


class TestScalarGuards:
    def test_finite_passes(self):
        assert ensure_finite_scalar(1.5, "x") == 1.5

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_nonfinite_rejected(self, bad):
        with pytest.raises(ValidationError):
            ensure_finite_scalar(bad, "x")

    def test_non_numeric_rejected(self):
        with pytest.raises(ValidationError):
            ensure_finite_scalar("rate", "x")

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            ensure_nonnegative_scalar(-0.1, "x")


class TestArrayGuards:
    def test_rate_block_ok(self):
        out = ensure_rate_block([[0.0, 1.0], [2.0, 0.0]], "a")
        assert out.shape == (2, 2)

    def test_nan_entry_rejected_with_location(self):
        m = np.zeros((3, 3))
        m[1, 2] = np.nan
        with pytest.raises(ValidationError, match=r"\(1, 2\)"):
            ensure_rate_block(m, "a")

    def test_negative_entry_rejected(self):
        with pytest.raises(ValidationError):
            ensure_rate_block([[0.0, -1.0], [0.0, 0.0]], "a")

    def test_wrong_ndim_rejected(self):
        with pytest.raises(ValidationError):
            ensure_rate_block([1.0, 2.0], "a")

    def test_finite_array_inf_rejected(self):
        with pytest.raises(ValidationError):
            ensure_finite_array([1.0, np.inf], "v")


class TestNegativeMask:
    def test_noise_clipped(self):
        out = ensure_no_material_negatives(np.array([1.0, -1e-14]), "pi")
        assert out[1] == 0.0

    def test_material_negative_rejected_with_context(self):
        with pytest.raises(ValidationError) as info:
            ensure_no_material_negatives(np.array([1.0, -1e-3]), "pi")
        assert info.value.context["most_negative"] == pytest.approx(-1e-3)

    def test_scaling_is_relative(self):
        # -1e-6 is material against a unit vector but noise against 1e6.
        ensure_no_material_negatives(np.array([1e6, -1e-6]), "pi")
        with pytest.raises(ValidationError):
            ensure_no_material_negatives(np.array([1.0, -1e-6]), "pi")


class TestConditioning:
    def test_condition_number_identity(self):
        assert condition_number(np.eye(3)) == pytest.approx(1.0)

    def test_spectral_radius(self):
        assert spectral_radius(np.diag([0.5, -0.9])) == pytest.approx(0.9)

    def test_warns_between_thresholds(self):
        m = np.diag([1.0, 1e-9])  # cond 1e9
        with pytest.warns(NearBoundaryWarning):
            check_conditioning(m, "M")

    def test_raises_above_error_threshold(self):
        m = np.diag([1.0, 1e-15])
        with pytest.raises(IllConditionedError) as info:
            check_conditioning(m, "M", spectral_radius_hint=0.9999)
        assert info.value.condition_number > 1e13
        assert info.value.spectral_radius == pytest.approx(0.9999)

    def test_clean_matrix_silent(self):
        cond = check_conditioning(np.eye(2), "M")
        assert cond == pytest.approx(1.0)


class TestWiring:
    """The guards must fire at the public entry points, not just in isolation."""

    def test_system_parameters_reject_nan_rate(self):
        with pytest.raises(ValidationError):
            SystemParameters(float("nan"), 0.5, Exponential(1.0), Exponential(1.0))

    def test_system_parameters_reject_inf_load(self):
        with pytest.raises(ValidationError):
            SystemParameters.from_loads(rho_s=float("inf"), rho_l=0.5)

    def test_qbd_rejects_nan_block(self):
        a0 = np.array([[np.nan]])
        with pytest.raises(ValidationError):
            QbdProcess(
                boundary_local=[np.zeros((1, 1))],
                boundary_up=[np.array([[0.5]])],
                boundary_down=[np.array([[1.0]])],
                a0=a0,
                a1=np.zeros((1, 1)),
                a2=np.array([[1.0]]),
            )

    def test_ctmc_rejects_nan_generator(self):
        with pytest.raises(ValidationError):
            Ctmc(np.array([[np.nan, 1.0], [1.0, 0.0]]), is_rate_matrix=True)

    def test_fitting_rejects_nan_moments(self):
        with pytest.raises(ValidationError):
            fit_phase_type(float("nan"), 2.0, 6.0)
