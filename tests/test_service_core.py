"""QueryService behavior: admission, deadlines, breaker, cache, manifest."""

import asyncio
import json

import pytest

from repro.orchestration import inject_faults
from repro.perf import SweepCache
from repro.robustness import CircuitBreaker, ServiceOverloadError
from repro.service import QueryService, ScenarioQuery
from repro.telemetry import registry


@pytest.fixture(autouse=True)
def _fresh_registry():
    registry().reset()
    yield
    registry().reset()


def _query(**overrides):
    fields = dict(rho_s=0.5, rho_l=0.5, case={"name": "a"}, threshold=2.5)
    fields.update(overrides)
    return ScenarioQuery(**fields)


class TestHappyPath:
    def test_answers_at_exact_fidelity(self):
        with QueryService(workers=2, name="t") as service:
            (answer,) = service.run_batch([_query(label="q")])
        assert answer.status == "answered"
        assert answer.fidelity == "exact"
        assert not answer.degraded
        assert answer.verdict["meets"] == ["Dedicated", "CS-ID", "CS-CQ"]
        assert [a["rung"] for a in answer.attempts] == ["exact"]
        assert answer.elapsed <= 5.0

    def test_exact_answers_populate_the_shared_cache(self):
        cache = SweepCache()
        with QueryService(workers=2, cache=cache, name="t") as service:
            service.run_batch([_query()])
        assert len(cache) == 1

    def test_unstable_point_still_answers(self):
        with QueryService(workers=2, name="t") as service:
            (answer,) = service.run_batch(
                [_query(rho_s=1.2, rho_l=0.3, threshold=None)]
            )
        assert answer.status == "answered"
        assert answer.values["Dedicated"] == float("inf")
        assert answer.values["CS-CQ"] < float("inf")

    def test_malformed_point_is_rejected_not_crashed(self):
        with QueryService(workers=2, name="t") as service:
            (answer,) = service.run_batch(
                [_query(case={"name": "no-such-case"})]
            )
        assert answer.status == "rejected"
        assert answer.error["type"] == "KeyError"
        assert registry().counter("service.rejected") == 1


class TestDeadlines:
    def test_tiny_deadline_degrades_to_the_bound_rung(self):
        # Far too small for a QBD solve, large enough for closed forms.
        with QueryService(workers=2, name="t") as service:
            (answer,) = service.run_batch([_query(deadline=0.04)])
        assert answer.status == "answered"
        assert answer.fidelity in ("cached", "truncated", "bound")
        assert answer.degraded
        assert answer.elapsed <= 0.04 + 0.25
        assert registry().counter("service.degraded") == 1

    def test_tiny_deadline_uses_cache_when_warm(self):
        cache = SweepCache()
        with QueryService(workers=2, cache=cache, name="t") as service:
            warm = service.run_batch([_query(label="warm")])
            assert warm[0].fidelity == "exact"
            (answer,) = service.run_batch([_query(label="rushed", deadline=0.04)])
        assert answer.fidelity == "cached"
        assert answer.values == warm[0].values

    def test_deadline_attempt_log_shows_the_descent(self):
        with QueryService(workers=2, name="t") as service:
            (answer,) = service.run_batch([_query(deadline=0.04)])
        rungs = [a["rung"] for a in answer.attempts]
        assert rungs[0] == "exact"
        assert rungs[-1] == answer.fidelity
        skipped = [a for a in answer.attempts if a["outcome"] == "skipped"]
        assert skipped, "cheap rungs must record why expensive ones were skipped"


class TestAdmissionControl:
    def test_submit_sheds_beyond_the_queue_limit(self):
        async def scenario():
            service = QueryService(workers=1, queue_limit=1, name="t")
            try:
                slow = asyncio.create_task(
                    service.submit(_query(label="occupant", deadline=2.0))
                )
                await asyncio.sleep(0.05)  # let it occupy the only slot
                with pytest.raises(ServiceOverloadError) as info:
                    await service.submit(_query(label="shed-me"))
                assert info.value.retry_after > 0
                return await slow
            finally:
                service.close()

        # The injected hang keeps the occupant's exact solve in flight so
        # the second submit deterministically finds the queue full.
        with inject_faults(hang=["occupant"], hang_seconds=0.5):
            answer = asyncio.run(scenario())
        assert answer.status == "answered"
        assert registry().counter("service.shed") == 1
        assert registry().counter("service.submitted") == 2

    def test_batch_mode_turns_shedding_into_rejected_rows(self):
        queries = [_query(label=f"q{i}", deadline=2.0) for i in range(6)]
        with QueryService(workers=2, queue_limit=2, name="t") as service:
            answers = service.run_batch(queries)
        assert len(answers) == len(queries)  # nothing lost
        shed = [a for a in answers if a.status == "rejected"]
        answered = [a for a in answers if a.status == "answered"]
        assert len(shed) == 4 and len(answered) == 2
        assert all(a.error["type"] == "ServiceOverloadError" for a in shed)
        assert registry().counter("service.shed") == 4


class TestCircuitBreaker:
    def test_open_breaker_skips_the_exact_rung(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=60.0)
        query = _query(label="blocked")
        breaker.record_failure(QueryService.region_key(query))
        with QueryService(workers=2, breaker=breaker, name="t") as service:
            (answer,) = service.run_batch([query])
        assert answer.status == "answered"
        assert answer.degraded
        exact_attempt = answer.attempts[0]
        assert exact_attempt["rung"] == "exact"
        assert exact_attempt["outcome"] == "skipped"
        assert exact_attempt["error"]["type"] == "CircuitOpenError"

    def test_breaker_is_region_scoped(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=60.0)
        breaker.record_failure(QueryService.region_key(_query(rho_s=0.9, rho_l=0.9)))
        with QueryService(workers=2, breaker=breaker, name="t") as service:
            (answer,) = service.run_batch([_query()])  # different region
        assert answer.fidelity == "exact"

    def test_region_key_buckets_loads(self):
        assert QueryService.region_key(_query(rho_s=0.51, rho_l=0.58)) == (
            QueryService.region_key(_query(rho_s=0.59, rho_l=0.50))
        )
        assert QueryService.region_key(_query(rho_s=0.61)) != (
            QueryService.region_key(_query(rho_s=0.59))
        )


class TestManifest:
    def test_totals_match_telemetry_counters(self, tmp_path):
        queries = [
            _query(label="ok-1"),
            _query(label="ok-2", rho_s=0.6),
            _query(label="rushed", deadline=0.04),
            _query(label="broken", case={"name": "nope"}),
        ]
        with QueryService(workers=2, queue_limit=8, name="m") as service:
            answers = service.run_batch(queries)
            path = service.write_manifest(answers, tmp_path / "SERVICE_m.json")
        manifest = json.loads(path.read_text())
        totals = manifest["totals"]
        counters = registry().snapshot()["counters"]
        assert totals["submitted"] == counters["service.submitted"] == 4
        assert totals["answered"] == counters["service.answered"]
        assert totals["rejected"] == counters["service.rejected"] == 1
        assert totals["degraded"] == counters["service.degraded"]
        assert totals["shed"] == counters.get("service.shed", 0) == 0
        assert sum(totals["by_fidelity"].values()) == totals["answered"]
        assert manifest["kind"] == "service-manifest"

    def test_closed_service_refuses_work(self):
        service = QueryService(workers=1, name="t")
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            asyncio.run(service.submit(_query()))


class TestServeCli:
    def test_serve_batch_with_check_gate(self, tmp_path, capsys):
        batch = tmp_path / "batch.json"
        batch.write_text(json.dumps({
            "queries": [
                {"rho_s": 0.5, "rho_l": 0.5, "case": {"name": "a"},
                 "threshold": 2.5, "label": "cli-a"},
                {"rho_s": 0.8, "rho_l": 0.7, "case": {"name": "b"},
                 "threshold": 5.0, "label": "cli-b"},
            ]
        }))
        from repro.__main__ import main

        code = main([
            "serve", "--batch", str(batch), "--out", str(tmp_path),
            "--name", "cli", "--workers", "2", "--check",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "cli-a" in out and "2 submitted" in out
        manifest = json.loads((tmp_path / "SERVICE_cli.json").read_text())
        assert manifest["totals"]["answered"] == 2

    def test_serve_rejects_malformed_batch_files(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"queries": [{"rho_s": 0.5}]}))
        from repro.__main__ import main

        assert main(["serve", "--batch", str(bad), "--out", str(tmp_path)]) == 2
        assert "rho_s and rho_l" in capsys.readouterr().err
