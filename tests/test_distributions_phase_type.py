"""Tests for general phase-type distributions."""

import math

import numpy as np
import pytest

from repro.distributions import Exponential, PhaseType


def h2_ph() -> PhaseType:
    """A two-branch hyperexponential as an explicit PH."""
    return PhaseType([0.4, 0.6], [[-1.0, 0.0], [0.0, -3.0]])


class TestPhaseType:
    def test_moment_formula_hyperexponential(self):
        ph = h2_ph()
        # E[X^k] = 0.4 * k!/1^k + 0.6 * k!/3^k
        for k in (1, 2, 3, 4):
            expected = 0.4 * math.factorial(k) + 0.6 * math.factorial(k) / 3.0**k
            assert ph.moment(k) == pytest.approx(expected)

    def test_laplace_hyperexponential(self):
        ph = h2_ph()
        s = 2.0
        expected = 0.4 * 1 / 3 + 0.6 * 3 / 5
        assert complex(ph.laplace(s)).real == pytest.approx(expected)

    def test_atom_at_zero(self):
        ph = PhaseType([0.5], [[-1.0]])  # mass 0.5 at 0
        assert ph.mean == pytest.approx(0.5)
        assert complex(ph.laplace(1e9)).real == pytest.approx(0.5, rel=1e-6)

    def test_sampling(self, rng):
        ph = h2_ph()
        samples = ph.sample(rng, 50_000)
        assert samples.mean() == pytest.approx(ph.mean, rel=0.03)

    def test_sampling_with_internal_transitions(self, rng):
        # Hypoexponential: 2 stages in series.
        ph = PhaseType([1.0, 0.0], [[-2.0, 2.0], [0.0, -4.0]])
        assert ph.mean == pytest.approx(0.75)
        samples = ph.sample(rng, 50_000)
        assert samples.mean() == pytest.approx(0.75, rel=0.03)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            PhaseType([1.0], [[-1.0, 0.0], [0.0, -1.0]])  # alpha/T mismatch
        with pytest.raises(ValueError):
            PhaseType([1.0, 0.0], [[-1.0, 2.0]])  # non-square
        with pytest.raises(ValueError):
            PhaseType([1.0], [[1.0]])  # positive diagonal
        with pytest.raises(ValueError):
            PhaseType([1.0, 0.0], [[-1.0, -0.5], [0.0, -1.0]])  # negative off-diag
        with pytest.raises(ValueError):
            PhaseType([0.7, 0.7], [[-1.0, 0.0], [0.0, -1.0]])  # alpha sums > 1
        with pytest.raises(ValueError):
            PhaseType([1.0, 0.0], [[-1.0, 2.0], [0.0, -1.0]])  # row sum > 0

    def test_exponential_round_trip(self):
        e = Exponential(2.0)
        ph = e.as_phase_type()
        assert isinstance(ph, PhaseType)
        assert ph.as_phase_type() is ph
        for k in (1, 2, 3):
            assert ph.moment(k) == pytest.approx(e.moment(k))
