"""Tests for the heterogeneous-host extension (paper conclusion).

"We have also assumed homogeneous hosts.  This assumption was simply made
for ease of exposition.  This work may be extended to hosts of different
speeds." — implemented for Dedicated and CS-ID analysis and for all
simulators; validated here by analysis-vs-simulation agreement.
"""

import pytest

from repro.core import (
    CsIdAnalysis,
    DedicatedAnalysis,
    LongHostCycle,
    SystemParameters,
    UnstableSystemError,
)
from repro.distributions import Exponential, coxian_from_mean_scv
from repro.simulation import simulate


class TestScaledDistributions:
    def test_exponential_scaled(self):
        e = Exponential(2.0).scaled(4.0)
        assert e.mean == pytest.approx(2.0)
        assert isinstance(e, Exponential)

    def test_coxian_scaled(self):
        c = coxian_from_mean_scv(1.0, 8.0)
        s = c.scaled(3.0)
        assert s.mean == pytest.approx(3.0)
        assert s.scv == pytest.approx(8.0)  # scaling preserves scv

    def test_generic_wrapper_moments_and_laplace(self):
        from repro.distributions import BoundedPareto

        bp = BoundedPareto(1.0, 10.0, 1.5)
        s = bp.scaled(2.0)
        for k in (1, 2, 3):
            assert s.moment(k) == pytest.approx(2.0**k * bp.moment(k))
        assert complex(s.laplace(0.5)).real == pytest.approx(
            complex(bp.laplace(1.0)).real, rel=1e-9
        )

    def test_nested_scaling_collapses(self):
        from repro.distributions import BoundedPareto, ScaledDistribution

        bp = BoundedPareto(1.0, 10.0, 1.5)
        nested = bp.scaled(2.0).scaled(3.0)
        assert isinstance(nested, ScaledDistribution)
        assert nested.factor == pytest.approx(6.0)
        assert nested.inner is bp

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            Exponential(1.0).scaled(0.0)


class TestDedicatedHeterogeneous:
    def test_speeds_scale_each_host(self):
        p = SystemParameters.from_loads(rho_s=0.8, rho_l=0.8)
        fast_shorts = DedicatedAnalysis(p, host_speeds=(2.0, 1.0))
        # Short host at speed 2: looks like an M/M/1 at load 0.4, mean 0.5.
        assert fast_shorts.mean_response_time_short() == pytest.approx(0.5 / 0.6)
        assert fast_shorts.mean_response_time_long() == pytest.approx(5.0)

    def test_speed_rescues_overload(self):
        p = SystemParameters.from_loads(rho_s=1.2, rho_l=0.5)
        with pytest.raises(UnstableSystemError):
            DedicatedAnalysis(p)
        analysis = DedicatedAnalysis(p, host_speeds=(1.5, 1.0))
        assert analysis.mean_response_time_short() > 0


class TestCsIdHeterogeneous:
    def test_homogeneous_default_unchanged(self):
        p = SystemParameters.from_loads(rho_s=0.9, rho_l=0.5)
        base = CsIdAnalysis(p)
        explicit = CsIdAnalysis(p, host_speeds=(1.0, 1.0))
        assert explicit.mean_response_time_short() == pytest.approx(
            base.mean_response_time_short()
        )

    def test_faster_donor_helps_everyone(self):
        p = SystemParameters.from_loads(rho_s=0.9, rho_l=0.5)
        base = CsIdAnalysis(p)
        fast = CsIdAnalysis(p, host_speeds=(1.0, 2.0))
        assert fast.mean_response_time_short() < base.mean_response_time_short()
        assert fast.mean_response_time_long() < base.mean_response_time_long()

    def test_slow_donor_rejected_when_longs_overload(self):
        p = SystemParameters.from_loads(rho_s=0.5, rho_l=0.6)
        with pytest.raises(UnstableSystemError):
            LongHostCycle(p, host_speeds=(1.0, 0.5))

    @pytest.mark.slow
    @pytest.mark.parametrize("speeds", [(1.0, 2.0), (1.0, 0.7), (1.5, 1.0)])
    def test_matches_simulation(self, speeds):
        p = SystemParameters.from_loads(rho_s=0.7, rho_l=0.4)
        analysis = CsIdAnalysis(p, host_speeds=speeds)
        sim = simulate(
            "cs-id", p, seed=17, warmup_jobs=30_000, measured_jobs=300_000,
            host_speeds=speeds,
        )
        assert sim.mean_response_short == pytest.approx(
            analysis.mean_response_time_short(), rel=0.03
        )
        assert sim.mean_response_long == pytest.approx(
            analysis.mean_response_time_long(), rel=0.03
        )

    def test_idle_probability_consistency(self):
        p = SystemParameters.from_loads(rho_s=0.7, rho_l=0.4)
        analysis = CsIdAnalysis(p, host_speeds=(1.0, 1.6))
        assert analysis.prob_long_host_idle() == pytest.approx(
            analysis.cycle.prob_idle, rel=1e-8
        )


class TestEngineSpeeds:
    def test_invalid_speeds_rejected(self):
        from repro.simulation.policies import DedicatedSimulation

        p = SystemParameters.from_loads(rho_s=0.5, rho_l=0.5)
        with pytest.raises(ValueError):
            DedicatedSimulation(p, host_speeds=(1.0, 0.0))

    @pytest.mark.slow
    def test_dedicated_simulation_matches_scaled_analysis(self):
        p = SystemParameters.from_loads(rho_s=0.8, rho_l=0.5)
        speeds = (2.0, 0.8)
        analysis = DedicatedAnalysis(p, host_speeds=speeds)
        sim = simulate(
            "dedicated", p, seed=23, warmup_jobs=30_000, measured_jobs=300_000,
            host_speeds=speeds,
        )
        assert sim.mean_response_short == pytest.approx(
            analysis.mean_response_time_short(), rel=0.03
        )
        assert sim.mean_response_long == pytest.approx(
            analysis.mean_response_time_long(), rel=0.04
        )
