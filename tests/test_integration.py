"""Cross-module integration tests: the pieces must agree with each other.

Each test checks an identity that holds only if *several* modules are
simultaneously correct (busy periods + fitting + QBD + queueing formulas
+ simulator), which is how this reproduction earns confidence without the
authors' original code.
"""

import numpy as np
import pytest

from repro.busy_periods import MG1BusyPeriod, NPlusOneBusyPeriod
from repro.core import (
    CsCqAnalysis,
    CsIdAnalysis,
    DedicatedAnalysis,
    SystemParameters,
)
from repro.distributions import Exponential, fit_phase_type
from repro.markov import QbdProcess
from repro.queueing import Mg1Queue
from repro.simulation import JobClass, simulate, simulate_trace


class TestBusyPeriodViaQbd:
    def test_mg1_idle_probability_from_busy_period(self):
        """Renewal-reward: P(idle) = E[I]/(E[I] + E[B]) must equal 1 - rho."""
        lam = 0.6
        service = Exponential(1.0)
        busy = MG1BusyPeriod(lam, service).mean
        idle = 1.0 / lam
        assert idle / (idle + busy) == pytest.approx(1.0 - lam)

    def test_busy_period_moments_survive_fitting_and_qbd(self):
        """Plug a fitted busy-period PH into a 2-phase on/off QBD and check
        the off-fraction matches the renewal answer."""
        lam_l = 0.5
        busy = MG1BusyPeriod(lam_l, Exponential(1.0))
        ph = fit_phase_type(*busy.moments()).as_phase_type()
        k = ph.n_phases
        # Phases: 0 = idle, 1..k = busy-period PH; level unused (selfloop).
        m = 1 + k
        a1 = np.zeros((m, m))
        a1[0, 1 : 1 + k] = lam_l * ph.alpha
        a1[1:, 1:] += ph.T - np.diag(np.diag(ph.T))
        a1[1:, 0] += ph.exit_rates
        qbd = QbdProcess([], [], [], np.zeros((m, m)), a1, np.zeros((m, m)))
        sol = qbd.solve()
        p_idle = float(sol.level_vector(0)[0]) / sol.total_mass()
        expected = (1.0 / lam_l) / (1.0 / lam_l + busy.mean)
        assert p_idle == pytest.approx(expected, rel=1e-8)


class TestLittlesLawEverywhere:
    @pytest.mark.slow
    def test_simulator_littles_law(self):
        """lambda * E[T] from job averages == time-average E[N] implied by
        the analysis across all policies (self-consistency of the engine)."""
        p = SystemParameters.from_loads(rho_s=0.9, rho_l=0.5)
        for policy, analysis in (
            ("dedicated", DedicatedAnalysis(p)),
            ("cs-id", CsIdAnalysis(p)),
            ("cs-cq", CsCqAnalysis(p)),
        ):
            sim = simulate(policy, p, seed=13, warmup_jobs=30_000, measured_jobs=300_000)
            assert sim.mean_response_short == pytest.approx(
                analysis.mean_response_time_short(), rel=0.04
            ), policy


class TestWorkConservationForLongs:
    def test_long_work_rate_identical_across_policies(self):
        """Longs receive exactly one host's capacity under every policy, so
        lam_l * E[X_L] (work arriving) is below 1 and the long *throughput*
        matches under all three analyses (Little on the number in service).

        E[# longs in service] = rho_l regardless of policy.
        """
        p = SystemParameters.from_loads(rho_s=0.8, rho_l=0.6)
        # Dedicated: E[N_l] - E[N_l,queue] = rho_l for an M/G/1.
        dedicated = DedicatedAnalysis(p)
        n_service_dedicated = (
            dedicated.mean_number_long()
            - p.lam_l * Mg1Queue(p.lam_l, p.long_service).mean_waiting_time()
        )
        assert n_service_dedicated == pytest.approx(0.6)
        # CS-ID / CS-CQ: E[N in service] = lam_l * E[X_L] by Little applied
        # to the service station alone; response = wait + service, so
        # E[N_service] = lam_l * E[X_L] too.
        for cls in (CsIdAnalysis, CsCqAnalysis):
            analysis = cls(p)
            n_service = analysis.mean_number_long() - p.lam_l * (
                analysis.mean_response_time_long() - p.long_service.mean
            )
            assert n_service == pytest.approx(0.6, rel=1e-9)


class TestNPlusOneConsistency:
    def test_nplus1_exceeds_single_job_busy_period(self):
        """B_{N+1} starts with at least one job's work plus extras."""
        for lam_l in (0.1, 0.5, 0.9):
            single = MG1BusyPeriod(lam_l, Exponential(1.0)).mean
            nplus1 = NPlusOneBusyPeriod(lam_l, Exponential(1.0), 2.0).mean
            assert nplus1 > single

    def test_nplus1_approaches_single_as_freeing_accelerates(self):
        single = MG1BusyPeriod(0.5, Exponential(1.0)).moments()
        fast = NPlusOneBusyPeriod(0.5, Exponential(1.0), 1e9).moments()
        for got, want in zip(fast, single):
            assert got == pytest.approx(want, rel=1e-6)


class TestTraceVsPoissonConsistency:
    @pytest.mark.slow
    def test_trace_replay_of_poisson_arrivals_matches_analysis(self, rng):
        """Build a Poisson/exponential trace by hand, replay it through
        CS-CQ, and compare with the analysis — exercises the whole replay
        path against the whole analytic path."""
        lam_s, lam_l = 1.0, 0.5
        n = 400_000
        times_s = np.cumsum(rng.exponential(1 / lam_s, n))
        times_l = np.cumsum(rng.exponential(1 / lam_l, int(n * lam_l / lam_s)))
        jobs = sorted(
            [(t, JobClass.SHORT, float(rng.exponential(1.0))) for t in times_s]
            + [(t, JobClass.LONG, float(rng.exponential(1.0))) for t in times_l],
            key=lambda triple: triple[0],
        )
        result = simulate_trace("cs-cq", jobs, warmup_jobs=40_000)
        analysis = CsCqAnalysis(SystemParameters.from_loads(rho_s=1.0, rho_l=0.5))
        assert result.mean_response_short == pytest.approx(
            analysis.mean_response_time_short(), rel=0.04
        )
        assert result.mean_response_long == pytest.approx(
            analysis.mean_response_time_long(), rel=0.04
        )
