"""Tests for the matrix-analytic QBD solver (paper Section 2.4 machinery)."""

import numpy as np
import pytest

from repro.markov import Ctmc, QbdProcess, solve_g_matrix, solve_r_matrix


def mm1_qbd(lam: float, mu: float) -> QbdProcess:
    return QbdProcess(
        boundary_local=[np.zeros((1, 1))],
        boundary_up=[np.array([[lam]])],
        boundary_down=[np.array([[mu]])],
        a0=np.array([[lam]]),
        a1=np.zeros((1, 1)),
        a2=np.array([[mu]]),
    )


class TestRMatrix:
    def test_mm1_r_is_rho(self):
        a0, a2 = np.array([[0.7]]), np.array([[1.0]])
        a1 = np.array([[-1.7]])
        r = solve_r_matrix(a0, a1, a2)
        assert r[0, 0] == pytest.approx(0.7)

    def test_quadratic_residual(self):
        rng = np.random.default_rng(3)
        m = 4
        a0 = rng.random((m, m)) * 0.2
        a1_off = rng.random((m, m)) * 0.3
        a2 = rng.random((m, m)) * 0.8
        a1 = a1_off - np.diag(np.diag(a1_off))
        np.fill_diagonal(a1, -(a1.sum(axis=1) + a0.sum(axis=1) + a2.sum(axis=1)))
        r = solve_r_matrix(a0, a1, a2)
        assert np.abs(a0 + r @ a1 + r @ r @ a2).max() < 1e-9

    def test_g_is_stochastic_when_recurrent(self):
        a0 = np.array([[0.3]])
        a2 = np.array([[1.0]])
        a1 = np.array([[-1.3]])
        g = solve_g_matrix(a0, a1, a2)
        assert g[0, 0] == pytest.approx(1.0)


class TestQbdMm1:
    def test_matches_mm1(self):
        lam, mu = 0.7, 1.0
        sol = mm1_qbd(lam, mu).solve()
        rho = lam / mu
        assert sol.level_probability(0) == pytest.approx(1 - rho)
        assert sol.level_probability(3) == pytest.approx((1 - rho) * rho**3)
        assert sol.mean_level() == pytest.approx(rho / (1 - rho))
        assert sol.second_moment_level() == pytest.approx(
            rho * (1 + rho) / (1 - rho) ** 2
        )
        assert sol.total_mass() == pytest.approx(1.0)

    def test_no_boundary_variant(self):
        lam, mu = 0.4, 1.0
        q = QbdProcess([], [], [], np.array([[lam]]), np.zeros((1, 1)), np.array([[mu]]))
        sol = q.solve()
        assert sol.level_probability(0) == pytest.approx(1 - lam / mu)
        assert sol.mean_level() == pytest.approx(lam / (mu - lam))


class TestQbdMm2:
    def test_matches_erlang_c(self):
        from repro.queueing import MmcQueue

        lam, mu = 1.1, 1.0
        q = QbdProcess(
            boundary_local=[np.zeros((1, 1)), np.zeros((1, 1))],
            boundary_up=[np.array([[lam]]), np.array([[lam]])],
            boundary_down=[np.array([[mu]]), np.array([[2 * mu]])],
            a0=np.array([[lam]]),
            a1=np.zeros((1, 1)),
            a2=np.array([[2 * mu]]),
        )
        sol = q.solve()
        exact = MmcQueue(lam, mu, 2)
        assert sol.mean_level() == pytest.approx(exact.mean_number_in_system(), rel=1e-9)
        assert sol.level_probability(0) == pytest.approx(exact.prob_empty(), rel=1e-9)


class TestQbdVsTruncation:
    def test_random_multiphase_qbd(self):
        rng = np.random.default_rng(11)
        m, bdim = 3, 2
        a0 = rng.random((m, m)) * 0.25
        a1 = rng.random((m, m)) * 0.4
        a2 = rng.random((m, m)) * 0.9
        bl = [rng.random((bdim, bdim)) * 0.4]
        bu = [rng.random((bdim, m)) * 0.3]
        bd = [rng.random((m, bdim)) * 0.9]
        sol = QbdProcess(bl, bu, bd, a0, a1, a2).solve()

        n_levels = 300
        dims = [bdim] + [m] * n_levels
        offsets = np.concatenate([[0], np.cumsum(dims)])
        big = np.zeros((offsets[-1], offsets[-1]))

        def put(i, j, block):
            big[offsets[i]:offsets[i] + dims[i], offsets[j]:offsets[j] + dims[j]] += block

        put(0, 0, bl[0])
        put(0, 1, bu[0])
        put(1, 0, bd[0])
        for level in range(1, n_levels + 1):
            put(level, level, a1)
            if level + 1 <= n_levels:
                put(level, level + 1, a0)
            if level >= 2:
                put(level, level - 1, a2)
        pi = Ctmc(big, is_rate_matrix=True).stationary_distribution()

        assert sol.level_vector(0) == pytest.approx(pi[:bdim], abs=1e-9)
        for level in (1, 2, 7):
            lo = offsets[level]
            assert sol.level_vector(level) == pytest.approx(pi[lo:lo + m], abs=1e-9)
        levels = np.concatenate([[0] * bdim] + [[n] * m for n in range(1, n_levels + 1)])
        assert sol.mean_level() == pytest.approx(float(pi @ levels), rel=1e-7)

    def test_phase_marginal_sums_to_tail_mass(self):
        sol = mm1_qbd(0.6, 1.0).solve()
        assert sol.phase_marginal().sum() == pytest.approx(sol.tail_mass())


class TestQbdValidation:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            QbdProcess(
                boundary_local=[np.zeros((2, 2))],
                boundary_up=[np.zeros((2, 3))],
                boundary_down=[np.zeros((3, 1))],  # wrong column count
                a0=np.eye(3),
                a1=np.zeros((3, 3)),
                a2=np.eye(3),
            )

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError):
            QbdProcess(
                boundary_local=[np.array([[-1.0]])],
                boundary_up=[np.array([[1.0]])],
                boundary_down=[np.array([[1.0]])],
                a0=np.array([[1.0]]),
                a1=np.zeros((1, 1)),
                a2=np.array([[1.0]]),
            )

    def test_level_vector_negative_rejected(self):
        sol = mm1_qbd(0.5, 1.0).solve()
        with pytest.raises(ValueError):
            sol.level_vector(-1)
