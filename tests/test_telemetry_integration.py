"""Telemetry end to end: bit-identity, cross-process merge, traced CLI.

The guarantees pinned here are the PR's acceptance criteria:

* tracing never changes results — solver outputs are bit-identical with
  and without ``REPRO_TRACE`` (the spans only observe);
* worker-subprocess metrics merge into the driver registry and the run
  manifest;
* a traced figure sweep exports a well-formed ``TRACE_*.jsonl`` that the
  ``trace`` CLI renders, checks, and diffs.
"""

import json

import numpy as np
import pytest

from repro.__main__ import main
from repro.contracts import suspects_by_cost, write_check_report
from repro.core import CsCqAnalysis, SystemParameters
from repro.markov.qbd import solve_r_matrix_with_diagnostics
from repro.orchestration import SweepPoint, SweepRunner
from repro.telemetry import (
    TRACE_ENV_VAR,
    load_trace,
    registry,
    trace_scope,
    tracing_enabled,
)


def _blocks():
    rng = np.random.default_rng(7)
    a0 = np.abs(rng.standard_normal((3, 3))) * 0.2
    a2 = np.abs(rng.standard_normal((3, 3))) * 0.6
    a1 = -np.diag((a0 + a2).sum(axis=1) + 0.5)
    return a0, a1, a2


class TestDisabledModeIdentity:
    def test_r_matrix_bit_identical_with_and_without_tracing(self):
        a0, a1, a2 = _blocks()
        plain, plain_diag = solve_r_matrix_with_diagnostics(a0, a1, a2)
        with trace_scope() as collector:
            traced, traced_diag = solve_r_matrix_with_diagnostics(a0, a1, a2)
        assert np.array_equal(plain, traced)
        assert plain_diag.method == traced_diag.method
        assert plain_diag.iterations == traced_diag.iterations
        assert plain_diag.residual == traced_diag.residual
        names = {r["name"] for r in collector.records()}
        assert "qbd.r_matrix" in names
        assert any(name.startswith("solver.rung.") for name in names)

    def test_analysis_bit_identical_and_spans_cover_the_pipeline(self):
        params = SystemParameters.from_loads(rho_s=0.8, rho_l=0.5)
        plain = CsCqAnalysis(params).mean_response_time_short()
        with trace_scope() as collector:
            traced = CsCqAnalysis(params).mean_response_time_short()
        assert plain == traced  # bit-identical, not approximately equal
        names = {r["name"] for r in collector.records()}
        for expected in (
            "analysis.cs_cq",
            "qbd.solve",
            "qbd.r_matrix",
            "busy.nplus1.moments",
            "fit.phase_type",
        ):
            assert expected in names, f"missing span {expected} in {sorted(names)}"

    def test_rung_span_reports_iterations_and_convergence(self):
        a0, a1, a2 = _blocks()
        with trace_scope() as collector:
            _, diagnostics = solve_r_matrix_with_diagnostics(a0, a1, a2)
        rungs = [
            r for r in collector.records() if r["name"].startswith("solver.rung.")
        ]
        assert rungs
        accepted = [r for r in rungs if r["attrs"].get("accepted")]
        assert len(accepted) == 1
        # A builtin bool, not a numpy scalar: the renderer's flag check is
        # ``attrs.get("accepted") is False``, which np.False_ would dodge.
        assert accepted[0]["attrs"]["accepted"] is True
        assert accepted[0]["attrs"]["iterations"] == diagnostics.iterations
        # Satellite: per-rung iteration counts surface on the diagnostics.
        assert diagnostics.rung_iterations == {
            attempt.name: attempt.iterations for attempt in diagnostics.rungs
        }
        assert "rung_iterations" in diagnostics.as_dict()


class TestCrossProcessMetrics:
    def test_worker_metrics_merge_into_driver_and_manifest(self, tmp_path):
        registry().reset()
        try:
            manifest_path = tmp_path / "m.json"
            runner = SweepRunner(
                workers=1, manifest_path=manifest_path, run_name="telemetry-merge"
            )
            points = [
                SweepPoint(
                    task="response-point",
                    kwargs={
                        "case": {
                            "name": "a",
                            "mean_short": 1.0,
                            "mean_long": 1.0,
                            "short_scv": 1.0,
                            "long_scv": 1.0,
                        },
                        "rho_s": rho_s,
                        "rho_l": 0.5,
                        "job_class": "short",
                    },
                    label=f"merge/{rho_s}",
                )
                for rho_s in (0.3, 0.6)
            ]
            outcomes = runner.run(points)
            assert all(o.ok for o in outcomes)
            # Worker subprocess counters landed in the driver registry...
            assert registry().counter("qbd.solves") >= 2.0
            # ...and in the run manifest.
            manifest = json.loads(manifest_path.read_text())
            counters = manifest["metrics"]["counters"]
            assert counters["qbd.solves"] >= 2.0
            assert any(name.startswith("cache.") for name in counters)
            assert "qbd.solve.seconds" in manifest["metrics"]["histograms"]
        finally:
            registry().reset()


class TestTracedCli:
    @pytest.fixture(scope="class")
    def traced_run(self, tmp_path_factory):
        """One tiny traced figure-4 sweep shared by the CLI tests."""
        ckpt = tmp_path_factory.mktemp("trace-cli")
        code = main(
            [
                "figure",
                "4",
                "--workers",
                "1",
                "--grid",
                "0.3",
                "--trace",
                "--checkpoint-dir",
                str(ckpt),
                "--name",
                "smoke",
            ]
        )
        assert code == 0
        return ckpt / "TRACE_smoke.jsonl"

    def test_trace_file_is_exported_and_well_formed(self, traced_run):
        assert traced_run.exists()
        header, records = load_trace(traced_run)
        assert header["format"] == "repro-trace-v1"
        names = {r["name"] for r in records}
        assert "cli.figure" in names
        assert "orchestration.sweep" in names
        assert "orchestration.point" in names  # adopted worker envelopes
        assert "orchestration.task" in names  # worker-side spans, rebased
        assert "qbd.r_matrix" in names  # deep solver spans crossed the boundary

    def test_trace_render_cli(self, traced_run, capsys):
        assert main(["trace", str(traced_run), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "cli.figure" in out
        assert "top 3 spans by self-time" in out
        assert "instrumented coverage" in out

    def test_trace_check_cli_passes_on_real_trace(self, traced_run, capsys):
        assert main(["trace", str(traced_run), "--check"]) == 0
        assert "no integrity problems" in capsys.readouterr().out

    def test_trace_check_cli_fails_on_corrupt_trace(self, traced_run, tmp_path, capsys):
        header, records = load_trace(traced_run)
        records[0] = dict(records[0], end=None)  # forge an unclosed span
        bad = tmp_path / "TRACE_bad.jsonl"
        bad.write_text(
            "\n".join(json.dumps(r) for r in [header] + records) + "\n"
        )
        assert main(["trace", str(bad), "--check"]) == 1
        assert "never closed" in capsys.readouterr().out

    def test_trace_diff_cli(self, traced_run, capsys):
        assert main(["trace", str(traced_run), "--diff", str(traced_run)]) == 0
        out = capsys.readouterr().out
        assert "total self-time" in out
        assert "1.00x" in out  # a trace diffed against itself

    def test_traced_stdout_matches_untraced(self, tmp_path, capsys):
        """--trace must not perturb the figure tables (stderr-only chatter)."""
        argv = ["figure", "3", "--grid", "0.2,0.5"]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["--trace", "--checkpoint-dir", str(tmp_path)]) == 0
        assert capsys.readouterr().out == plain
        assert (tmp_path / "TRACE_figure3.jsonl").exists()

    def test_trace_flag_does_not_leak_into_later_calls(
        self, traced_run, tmp_path, capsys, monkeypatch
    ):
        """A --trace run must restore state: later in-process main() calls
        (tests, notebooks) stay untraced and write no stray TRACE files."""
        import os

        assert traced_run.exists()  # a --trace run already happened
        assert not tracing_enabled()
        assert TRACE_ENV_VAR not in os.environ
        monkeypatch.chdir(tmp_path)  # any stray results/ would land here
        assert main(["figure", "3", "--grid", "0.2"]) == 0
        capsys.readouterr()
        assert not (tmp_path / "results").exists()


class TestCheckReportCost:
    def test_wall_time_threaded_and_suspects_sorted(self, tmp_path):
        verdicts = [
            {"label": "cheap", "classification": "suspect", "wall_time_s": 0.5},
            {"label": "fine", "classification": "agree", "wall_time_s": 9.0},
            {"label": "dear", "classification": "inconclusive", "wall_time_s": 7.0},
            {"label": "legacy", "classification": "suspect", "wall_time": 2.0},
        ]
        path = write_check_report(tmp_path, "cost", verdicts)
        report = json.loads(path.read_text())
        assert report["version"] == 2
        # Every point carries wall_time_s (legacy wall_time is promoted).
        assert [p["wall_time_s"] for p in report["points"]] == [0.5, 9.0, 7.0, 2.0]
        # Suspect list excludes agreeing points and sorts by cost, descending.
        assert [s["label"] for s in report["suspects"]] == ["dear", "legacy", "cheap"]
        assert suspects_by_cost(report["points"])[0]["label"] == "dear"
