"""Tests for Lognormal and Weibull distributions."""

import math

import numpy as np
import pytest

from repro.distributions import Lognormal, Weibull, fit_phase_type


class TestLognormal:
    def test_from_mean_scv(self):
        ln = Lognormal.from_mean_scv(2.0, 4.0)
        assert ln.mean == pytest.approx(2.0)
        assert ln.scv == pytest.approx(4.0)

    def test_moment_formula(self):
        ln = Lognormal(0.5, 0.8)
        for k in (1, 2, 3):
            assert ln.moment(k) == pytest.approx(
                math.exp(k * 0.5 + 0.5 * k * k * 0.64)
            )

    def test_sampling(self, rng):
        ln = Lognormal.from_mean_scv(1.0, 2.0)
        samples = ln.sample(rng, 300_000)
        assert samples.mean() == pytest.approx(1.0, rel=0.02)

    def test_laplace_quadrature(self):
        # Compare against Monte Carlo of E[e^{-sX}].
        ln = Lognormal.from_mean_scv(1.0, 1.5)
        rng = np.random.default_rng(3)
        samples = ln.sample(rng, 400_000)
        for s in (0.5, 2.0):
            mc = float(np.mean(np.exp(-s * samples)))
            assert complex(ln.laplace(s)).real == pytest.approx(mc, abs=0.003)

    def test_three_moment_fit_consumable(self):
        ln = Lognormal.from_mean_scv(1.0, 3.0)
        fitted = fit_phase_type(*ln.moments(3))
        for k in (1, 2, 3):
            assert fitted.moment(k) == pytest.approx(ln.moment(k), rel=1e-6)

    def test_invalid(self):
        with pytest.raises(ValueError):
            Lognormal(0.0, 0.0)
        with pytest.raises(ValueError):
            Lognormal.from_mean_scv(-1.0, 1.0)


class TestWeibull:
    def test_shape_one_is_exponential(self):
        w = Weibull(1.0, 2.0)
        assert w.mean == pytest.approx(2.0)
        assert w.scv == pytest.approx(1.0)

    def test_moment_formula(self):
        w = Weibull(2.0, 1.0)  # Rayleigh-like
        assert w.mean == pytest.approx(math.gamma(1.5))
        assert w.moment(2) == pytest.approx(math.gamma(2.0))

    def test_low_shape_high_variability(self):
        assert Weibull(0.5, 1.0).scv > 4.0

    def test_sampling(self, rng):
        w = Weibull(0.7, 1.0)
        samples = w.sample(rng, 300_000)
        assert samples.mean() == pytest.approx(w.mean, rel=0.02)

    def test_laplace_vs_monte_carlo(self, rng):
        w = Weibull(1.5, 1.0)
        samples = w.sample(rng, 300_000)
        for s in (0.5, 2.0):
            mc = float(np.mean(np.exp(-s * samples)))
            assert complex(w.laplace(s)).real == pytest.approx(mc, abs=0.003)

    def test_invalid(self):
        with pytest.raises(ValueError):
            Weibull(0.0, 1.0)
        with pytest.raises(ValueError):
            Weibull(1.0, -1.0)


class TestUseInSystem:
    @pytest.mark.slow
    def test_lognormal_longs_end_to_end(self, rng):
        """A lognormal long class through fitting + CS-CQ + simulation.

        The simulation uses the TRUE lognormal while the analysis sees only
        its three-moment PH stand-in, so the tolerance here measures the
        paper's moment-matching step on a genuinely non-phase-type law
        (~6% for scv 4 — looser than the within-family envelope)."""
        from repro.core import CsCqAnalysis, SystemParameters
        from repro.distributions import Exponential
        from repro.simulation import simulate

        long_dist = Lognormal.from_mean_scv(10.0, 4.0)
        params = SystemParameters(
            lam_s=0.9, lam_l=0.05,
            short_service=Exponential(1.0),
            long_service=fit_phase_type(*long_dist.moments(3)),
        )
        analysis = CsCqAnalysis(params)
        # Simulate with the TRUE lognormal longs (fit only in the analysis).
        true_params = SystemParameters(
            lam_s=0.9, lam_l=0.05,
            short_service=Exponential(1.0),
            long_service=long_dist,
        )
        sim = simulate("cs-cq", true_params, seed=13, warmup_jobs=30_000,
                       measured_jobs=300_000)
        assert analysis.mean_response_time_short() == pytest.approx(
            sim.mean_response_short, rel=0.09
        )
