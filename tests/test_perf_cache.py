"""The sweep cache (repro.perf) and its correctness-transparency contract.

The load-bearing property: caching must be *bit-transparent*.  A figure
sweep computed with the sweep cache active must equal, float for float,
the same sweep computed with caching disabled — a cache hit returns the
identical object the miss path would have produced, never a rounded or
re-derived stand-in.  The property tests below pin this across the
figure-4/5/6 parameter grids (satellite S4).
"""

import contextlib

import numpy as np
import pytest

from repro.experiments import figures
from repro.markov import QbdProcess
from repro.perf import SweepCache, active_cache, cached, sweep_cache


class TestSweepCacheUnit:
    def test_no_scope_means_no_caching(self):
        calls = []
        assert active_cache() is None
        assert cached("ns", "k", lambda: calls.append(1) or "v") == "v"
        assert cached("ns", "k", lambda: calls.append(1) or "v") == "v"
        assert len(calls) == 2  # computed both times

    def test_scope_memoizes_and_counts(self):
        calls = []
        with sweep_cache() as cache:
            first = cached("ns", "k", lambda: calls.append(1) or object())
            second = cached("ns", "k", lambda: calls.append(1) or object())
            assert first is second
            assert len(calls) == 1
            assert cache.hits["ns"] == 1 and cache.misses["ns"] == 1
        assert active_cache() is None

    def test_namespaces_are_disjoint(self):
        with sweep_cache():
            a = cached("ns-a", "k", lambda: "a")
            b = cached("ns-b", "k", lambda: "b")
            assert (a, b) == ("a", "b")

    def test_nested_scopes_share_the_outer_cache(self):
        with sweep_cache() as outer:
            cached("ns", "k", lambda: "v")
            with sweep_cache() as inner:
                assert inner is outer
                assert inner.contains("ns", "k")
            # inner exit must not tear down the outer scope
            assert active_cache() is outer
        assert active_cache() is None

    def test_scope_dies_with_the_context(self):
        with sweep_cache():
            cached("ns", "k", lambda: "v")
        with sweep_cache() as fresh:
            assert not fresh.contains("ns", "k")

    def test_stats_and_values(self):
        cache = SweepCache()
        cache.get_or_compute("ns", 1, lambda: "x")
        cache.get_or_compute("ns", 1, lambda: "x")
        cache.get_or_compute("other", 2, lambda: "y")
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["hits"] == 1 and stats["misses"] == 2
        assert stats["by_namespace"]["ns"]["hit_rate"] == 0.5
        assert cache.values("ns") == ["x"]


class TestDiagnosticsObservability:
    def _blocks(self):
        # A small stable QBD: M/M/1-like with two phases.
        a0 = np.array([[0.5, 0.0], [0.0, 0.5]])
        a1 = np.array([[0.0, 0.3], [0.2, 0.0]])
        a2 = np.array([[1.0, 0.0], [0.0, 1.2]])
        return a0, a1, a2

    def test_qbd_hit_flags_diagnostics(self):
        a0, a1, a2 = self._blocks()
        with sweep_cache():
            qbd = QbdProcess([], [], [], a0, a1, a2)
            miss = qbd.solve()
            hit = QbdProcess([], [], [], a0, a1, a2).solve()
        assert miss.diagnostics.cache_hit is False
        assert hit.diagnostics.cache_hit is True
        assert "cache hit" in hit.diagnostics.summary()
        # identical content, and the flag never leaks back onto the
        # stored (miss) object
        assert np.array_equal(hit.pi_repeat, miss.pi_repeat)
        assert miss.diagnostics.cache_hit is False

    def test_uncached_solve_untouched_outside_scope(self):
        a0, a1, a2 = self._blocks()
        solution = QbdProcess([], [], [], a0, a1, a2).solve()
        assert solution.diagnostics.cache_hit is False


def _uncached(monkeypatch):
    """Disable the sweep cache inside the figure functions."""

    @contextlib.contextmanager
    def null_scope():
        yield None

    monkeypatch.setattr(figures, "sweep_cache", null_scope)


def _assert_panels_identical(cached_panels, uncached_panels):
    assert len(cached_panels) == len(uncached_panels)
    for got, want in zip(cached_panels, uncached_panels):
        assert got.title == want.title
        assert len(got.series) == len(want.series)
        for s_got, s_want in zip(got.series, want.series):
            assert s_got.label == s_want.label
            # exact equality: a cache hit must be the bit-identical value
            assert np.array_equal(s_got.x, s_want.x, equal_nan=True)
            assert np.array_equal(s_got.y, s_want.y, equal_nan=True)


class TestCachedEqualsUncached:
    """S4: every cached quantity equals its uncached counterpart exactly."""

    def test_figure4_grid(self, monkeypatch):
        with sweep_cache() as cache:
            cached_panels = figures.figure4_panels()
        assert cache.stats()["hits"] > 0  # the sweep actually exercised it
        _uncached(monkeypatch)
        _assert_panels_identical(cached_panels, figures.figure4_panels())

    def test_figure5_grid(self, monkeypatch):
        with sweep_cache() as cache:
            cached_panels = figures.figure5_panels()
        assert cache.stats()["hits"] > 0
        _uncached(monkeypatch)
        _assert_panels_identical(cached_panels, figures.figure5_panels())

    def test_figure6_grid(self, monkeypatch):
        with sweep_cache() as cache:
            cached_panels = figures.figure6_panels()
        assert cache.stats()["hits"] > 0
        _uncached(monkeypatch)
        _assert_panels_identical(cached_panels, figures.figure6_panels())

    def test_repeated_sweep_is_all_hits_and_identical(self):
        """Within one scope a repeated sweep is served from the cache —
        and still returns exactly the same numbers."""
        with sweep_cache() as cache:
            first = figures.figure4_panels(rho_l=0.5, rho_s_values=[0.4, 0.8])
            misses_after_first = cache.stats()["misses"]
            second = figures.figure4_panels(rho_l=0.5, rho_s_values=[0.4, 0.8])
            assert cache.stats()["misses"] == misses_after_first
        _assert_panels_identical(first, second)


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-v"]))
