"""Tests for the robustness error taxonomy (repro.robustness.errors)."""

import pytest

from repro.core import UnstableSystemError
from repro.distributions import FittingError
from repro.robustness import (
    ConvergenceError,
    IllConditionedError,
    NearBoundaryWarning,
    NumericalError,
    ReproError,
    ValidationError,
)


class TestHierarchy:
    def test_all_rooted_at_repro_error(self):
        for cls in (
            ValidationError,
            UnstableSystemError,
            NumericalError,
            ConvergenceError,
            IllConditionedError,
            FittingError,
        ):
            assert issubclass(cls, ReproError)

    def test_backward_compatible_bases(self):
        # Pre-hardening code caught ValueError / ArithmeticError; both must
        # keep working.
        assert issubclass(UnstableSystemError, ValueError)
        assert issubclass(ValidationError, ValueError)
        assert issubclass(FittingError, ValueError)
        assert issubclass(NumericalError, ArithmeticError)
        assert issubclass(ConvergenceError, ArithmeticError)
        assert issubclass(IllConditionedError, ArithmeticError)

    def test_convergence_under_numerical(self):
        assert issubclass(ConvergenceError, NumericalError)
        assert issubclass(IllConditionedError, NumericalError)

    def test_unstable_importable_from_params(self):
        # Historical home still re-exports the re-parented class.
        from repro.core.params import UnstableSystemError as FromParams

        assert FromParams is UnstableSystemError

    def test_near_boundary_is_warning(self):
        assert issubclass(NearBoundaryWarning, UserWarning)


class TestContext:
    def test_context_fields_stored_and_rendered(self):
        exc = ConvergenceError(
            "did not converge", residual=1.5e-6, iterations=200, spectral_radius=0.999
        )
        assert exc.context["residual"] == pytest.approx(1.5e-6)
        assert exc.residual == pytest.approx(1.5e-6)
        assert exc.iterations == 200
        assert exc.spectral_radius == pytest.approx(0.999)
        assert exc.condition_number is None
        text = str(exc)
        assert "did not converge" in text
        assert "residual=1.5e-06" in text
        assert "iterations=200" in text

    def test_none_context_dropped(self):
        exc = ReproError("msg", residual=None, iterations=3)
        assert "residual" not in exc.context
        assert exc.context == {"iterations": 3}

    def test_message_without_context(self):
        exc = ReproError("plain message")
        assert str(exc) == "plain message"
        assert exc.context == {}

    def test_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            raise IllConditionedError("bad matrix", condition_number=1e15)
