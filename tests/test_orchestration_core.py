"""Unit tests for orchestration building blocks: spec, journal, manifest, faults."""

import importlib.util
import json
import os
from pathlib import Path

import pytest

from repro.orchestration import (
    CheckpointJournal,
    SweepPoint,
    SweepRunner,
    atomic_write_text,
    point_key,
    resolve_task,
)
from repro.orchestration import faults


class TestPointKey:
    def test_stable_under_kwarg_order(self):
        a = point_key("t", {"x": 1, "y": 2.5})
        b = point_key("t", {"y": 2.5, "x": 1})
        assert a == b

    def test_distinct_specs_distinct_keys(self):
        assert point_key("t", {"x": 1}) != point_key("t", {"x": 2})
        assert point_key("t", {"x": 1}) != point_key("u", {"x": 1})

    def test_sweep_point_key_matches_helper(self):
        point = SweepPoint(task="t", kwargs={"x": 1}, label="anything")
        assert point.key == point_key("t", {"x": 1})
        # the label is cosmetic: it must not change identity
        assert point.key == SweepPoint(task="t", kwargs={"x": 1}).key

    def test_schema_version_is_part_of_identity(self, monkeypatch):
        from repro.orchestration import spec

        before = point_key("t", {"x": 1})
        monkeypatch.setattr(spec, "SCHEMA_VERSION", spec.SCHEMA_VERSION + 1)
        assert point_key("t", {"x": 1}) != before

    def test_schema_bump_invalidates_stale_checkpoints(self, tmp_path, monkeypatch):
        """A journal written under one schema version must not satisfy a
        resume after the version is bumped: the stale entry's key no longer
        matches any point, so the point is recomputed instead of silently
        reusing a result produced by older solver numerics."""
        from repro.orchestration import spec

        journal = CheckpointJournal(tmp_path / "j.jsonl")
        point = SweepPoint(task="t", kwargs={"x": 1})
        journal.record({"key": point.key, "status": "ok", "value": 1.5})
        assert point.key in journal

        monkeypatch.setattr(spec, "SCHEMA_VERSION", spec.SCHEMA_VERSION + 1)
        reloaded = CheckpointJournal(tmp_path / "j.jsonl")
        assert point.key not in reloaded


class TestResolveTask:
    def test_registered_name(self):
        fn = resolve_task("demo-point")
        assert fn(x=3.0) == {"values": {"y": 9.0}}

    def test_dotted_path(self):
        assert resolve_task("math:sqrt")(9.0) == 3.0

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            resolve_task("no-such-task")
        with pytest.raises(KeyError):
            resolve_task("math:no_such_attr")


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "one\n")
        atomic_write_text(target, "two\n")
        assert target.read_text() == "two\n"

    def test_no_temp_droppings(self, tmp_path):
        atomic_write_text(tmp_path / "out.txt", "x")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_creates_parent_dirs(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.txt"
        atomic_write_text(target, "deep")
        assert target.read_text() == "deep"


class TestCheckpointJournal:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CheckpointJournal(path)
        journal.record({"key": "k1", "status": "ok", "value": 1.5})
        journal.record({"key": "k2", "status": "failed"})
        reloaded = CheckpointJournal(path)
        assert len(reloaded) == 2
        assert reloaded.get("k1")["value"] == 1.5
        assert "k2" in reloaded

    def test_last_record_wins(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j.jsonl")
        journal.record({"key": "k", "status": "failed"})
        journal.record({"key": "k", "status": "ok"})
        assert journal.get("k")["status"] == "ok"
        assert len(CheckpointJournal(tmp_path / "j.jsonl")) == 1

    def test_tolerates_torn_tail_line(self, tmp_path):
        path = tmp_path / "j.jsonl"
        good = json.dumps({"key": "k1", "status": "ok"})
        path.write_text(good + "\n" + '{"key": "k2", "status"')  # truncated
        journal = CheckpointJournal(path)
        assert len(journal) == 1
        assert journal.get("k1")["status"] == "ok"

    def test_reset_removes_file(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CheckpointJournal(path)
        journal.record({"key": "k", "status": "ok"})
        journal.reset()
        assert not path.exists() and len(journal) == 0

    def test_record_requires_key(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointJournal(tmp_path / "j.jsonl").record({"status": "ok"})


class TestManifest:
    def test_schema_after_inline_run(self, tmp_path):
        runner = SweepRunner(
            workers=0,
            journal_path=tmp_path / "j.jsonl",
            manifest_path=tmp_path / "m.json",
            run_name="unit",
        )
        runner.run(
            [SweepPoint(task="demo-point", kwargs={"x": i}, label=f"demo/x={i}")
             for i in range(3)]
        )
        manifest = json.loads((tmp_path / "m.json").read_text())
        assert manifest["name"] == "unit"
        assert manifest["version"]
        assert manifest["interrupted"] is None
        assert manifest["counts"]["ok"] == 3
        assert manifest["counts"]["total"] == 3
        assert manifest["counts"]["resumed"] == 0
        for point in manifest["points"]:
            assert point["status"] == "ok"
            assert point["resumed"] is False
            assert point["wall_time"] >= 0.0
            assert point["key"] and point["label"]


class TestFaults:
    def test_parse_fault_spec(self):
        spec = faults.parse_fault_spec("crash:a;hang:b; numerical:c ")
        assert spec == (("crash", "a"), ("hang", "b"), ("numerical", "c"))

    def test_parse_rejects_bad_entries(self):
        with pytest.raises(ValueError):
            faults.parse_fault_spec("explode:a")
        with pytest.raises(ValueError):
            faults.parse_fault_spec("crash")

    def test_fault_for_matches_substring(self):
        with faults.inject_faults(crash=("x=2",), numerical=("x=4",)):
            assert faults.fault_for("demo/x=2") == "crash"
            assert faults.fault_for("demo/x=4") == "numerical"
            assert faults.fault_for("demo/x=1") is None

    def test_inject_faults_restores_environment(self):
        os.environ.pop(faults.ENV_POINTS, None)
        with faults.inject_faults(hang=("a",), abort_after=3, hang_seconds=5):
            assert os.environ[faults.ENV_POINTS] == "hang:a"
            assert faults.abort_after() == 3
            assert faults.hang_seconds() == 5.0
        assert faults.ENV_POINTS not in os.environ
        assert faults.abort_after() is None

    def test_numerical_trigger_carries_context(self):
        from repro.robustness import NumericalError

        with faults.inject_faults(numerical=("bad",)):
            with pytest.raises(NumericalError) as excinfo:
                faults.maybe_trigger("point/bad/one")
            assert excinfo.value.context.get("injected") is True


class TestBenchmarkSaveResult:
    """Satellite: benchmarks/_util.save_result must write atomically."""

    @staticmethod
    def _load_util():
        path = Path(__file__).resolve().parent.parent / "benchmarks" / "_util.py"
        spec = importlib.util.spec_from_file_location("bench_util", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_save_result_atomic(self, tmp_path, monkeypatch, capsys):
        util = self._load_util()
        monkeypatch.setattr(util, "RESULTS_DIR", tmp_path)
        util.save_result("table", "row 1\nrow 2")
        assert (tmp_path / "table.txt").read_text() == "row 1\nrow 2\n"
        # overwrite goes through the same atomic path, no temp droppings
        util.save_result("table", "row 3")
        assert (tmp_path / "table.txt").read_text() == "row 3\n"
        assert [p.name for p in tmp_path.iterdir()] == ["table.txt"]
        assert "[saved to results/table.txt]" in capsys.readouterr().out
