"""Tests for Deterministic, Uniform, BoundedPareto and Hyperexponential."""

import math

import numpy as np
import pytest

from repro.distributions import (
    BoundedPareto,
    Deterministic,
    Hyperexponential,
    Uniform,
)


class TestDeterministic:
    def test_moments(self):
        d = Deterministic(3.0)
        assert d.mean == 3.0
        assert d.moment(2) == 9.0
        assert d.variance == pytest.approx(0.0)
        assert d.scv == pytest.approx(0.0)

    def test_laplace(self):
        d = Deterministic(2.0)
        assert complex(d.laplace(0.5)).real == pytest.approx(math.exp(-1.0))

    def test_sample(self, rng):
        d = Deterministic(1.5)
        assert d.sample(rng) == 1.5
        assert np.all(d.sample(rng, 5) == 1.5)


class TestUniform:
    def test_moments(self):
        u = Uniform(0.0, 2.0)
        assert u.mean == pytest.approx(1.0)
        assert u.moment(2) == pytest.approx(4.0 / 3.0)
        assert u.variance == pytest.approx(1.0 / 3.0)

    def test_laplace_at_zero(self):
        assert Uniform(1.0, 3.0).laplace(0.0) == pytest.approx(1.0)

    def test_laplace_numeric(self):
        u = Uniform(0.5, 1.5)
        s = 0.7
        # Compare against quadrature of the density.
        grid = np.linspace(0.5, 1.5, 20001)
        numeric = np.trapezoid(np.exp(-s * grid), grid)
        assert complex(u.laplace(s)).real == pytest.approx(numeric, rel=1e-6)

    def test_sample_range(self, rng):
        samples = Uniform(2.0, 4.0).sample(rng, 1000)
        assert samples.min() >= 2.0 and samples.max() <= 4.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            Uniform(3.0, 2.0)


class TestBoundedPareto:
    def test_moment_formula(self):
        bp = BoundedPareto(1.0, 100.0, 1.5)
        # Cross-check the closed form against quadrature.
        grid = np.linspace(1.0, 100.0, 400001)
        density = 1.5 * grid ** (-2.5) / (1 - (1 / 100) ** 1.5)
        for k in (1, 2):
            numeric = np.trapezoid(grid**k * density, grid)
            assert bp.moment(k) == pytest.approx(numeric, rel=1e-4)

    def test_alpha_equals_k_branch(self):
        bp = BoundedPareto(1.0, 10.0, 2.0)
        grid = np.linspace(1.0, 10.0, 200001)
        density = 2.0 * grid ** (-3.0) / (1 - (1 / 10) ** 2.0)
        numeric = np.trapezoid(grid**2 * density, grid)
        assert bp.moment(2) == pytest.approx(numeric, rel=1e-5)

    def test_high_variability(self):
        bp = BoundedPareto(0.1, 1000.0, 1.1)
        assert bp.scv > 10.0  # heavy tail

    def test_sampling_within_bounds(self, rng):
        bp = BoundedPareto(0.5, 50.0, 1.2)
        samples = bp.sample(rng, 10_000)
        assert samples.min() >= 0.5 and samples.max() <= 50.0
        assert samples.mean() == pytest.approx(bp.mean, rel=0.1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            BoundedPareto(0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            BoundedPareto(2.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            BoundedPareto(1.0, 2.0, -1.0)


class TestHyperexponential:
    def test_moments(self):
        h = Hyperexponential([0.3, 0.7], [1.0, 2.0])
        assert h.mean == pytest.approx(0.3 + 0.35)
        assert h.moment(2) == pytest.approx(0.3 * 2 + 0.7 * 0.5)

    def test_balanced_means(self):
        h = Hyperexponential.balanced_means(2.0, 8.0)
        assert h.mean == pytest.approx(2.0)
        assert h.scv == pytest.approx(8.0)
        # Balanced means property: p_i / rate_i equal across branches.
        assert h.probs[0] / h.rates[0] == pytest.approx(h.probs[1] / h.rates[1])

    def test_balanced_means_scv_one(self):
        h = Hyperexponential.balanced_means(1.0, 1.0)
        assert h.scv == pytest.approx(1.0)

    def test_balanced_means_requires_scv_geq_one(self):
        with pytest.raises(ValueError):
            Hyperexponential.balanced_means(1.0, 0.5)

    def test_as_phase_type(self):
        h = Hyperexponential([0.25, 0.75], [0.5, 4.0])
        ph = h.as_phase_type()
        for k in (1, 2, 3):
            assert ph.moment(k) == pytest.approx(h.moment(k))

    def test_sampling(self, rng):
        h = Hyperexponential.balanced_means(1.0, 4.0)
        samples = h.sample(rng, 300_000)
        assert samples.mean() == pytest.approx(1.0, rel=0.02)

    def test_invalid(self):
        with pytest.raises(ValueError):
            Hyperexponential([0.5, 0.6], [1.0, 2.0])  # probs don't sum to 1
        with pytest.raises(ValueError):
            Hyperexponential([1.0], [0.0])
