"""Tests for Theorem 1's stability regions (and Figure 3's shape)."""

import math

import pytest

from repro.core import (
    GOLDEN_RATIO,
    cs_cq_is_stable,
    cs_cq_max_rho_s,
    cs_id_is_stable,
    cs_id_long_host_prob_busy,
    cs_id_long_host_prob_busy_from_cycle,
    cs_id_max_rho_s,
    dedicated_is_stable,
    dedicated_max_rho_s,
)


class TestDedicated:
    def test_unit_square(self):
        assert dedicated_is_stable(0.99, 0.99)
        assert not dedicated_is_stable(1.0, 0.5)
        assert not dedicated_is_stable(0.5, 1.0)
        assert dedicated_max_rho_s(0.5) == 1.0
        assert dedicated_max_rho_s(1.0) == 0.0


class TestCsCq:
    def test_theorem_boundary(self):
        assert cs_cq_max_rho_s(0.0) == pytest.approx(2.0)
        assert cs_cq_max_rho_s(0.5) == pytest.approx(1.5)
        assert cs_cq_is_stable(1.49, 0.5)
        assert not cs_cq_is_stable(1.5, 0.5)
        assert not cs_cq_is_stable(0.5, 1.0)


class TestCsId:
    def test_golden_ratio_at_zero_long_load(self):
        """Paper: 'rho_s can be as high as about 1.6 under CS-ID'."""
        assert cs_id_max_rho_s(0.0) == pytest.approx(GOLDEN_RATIO, rel=1e-9)

    def test_boundary_decreases_with_rho_l(self):
        values = [cs_id_max_rho_s(r) for r in (0.0, 0.2, 0.4, 0.6, 0.8)]
        assert values == sorted(values, reverse=True)

    def test_boundary_approaches_one(self):
        assert cs_id_max_rho_s(0.999) == pytest.approx(1.0, abs=5e-3)

    def test_between_dedicated_and_cs_cq(self):
        """Figure 3's ordering: Dedicated < CS-ID < CS-CQ everywhere."""
        for rho_l in (0.1, 0.3, 0.5, 0.7, 0.9):
            assert (
                dedicated_max_rho_s(rho_l)
                < cs_id_max_rho_s(rho_l)
                < cs_cq_max_rho_s(rho_l)
            )

    def test_is_stable_consistent_with_boundary(self):
        rho_l = 0.4
        boundary = cs_id_max_rho_s(rho_l)
        assert cs_id_is_stable(boundary - 0.01, rho_l)
        assert not cs_id_is_stable(boundary + 0.01, rho_l)

    def test_unstable_longs(self):
        assert not cs_id_is_stable(0.5, 1.0)

    def test_golden_ratio_closed_form(self):
        """At rho_l = 0 the boundary solves rho^2 = 1 + rho."""
        phi = cs_id_max_rho_s(0.0)
        assert phi * phi == pytest.approx(1 + phi, rel=1e-9)

    def test_prob_busy_monotone_in_rho_s(self):
        values = [
            cs_id_long_host_prob_busy(r, 0.3) for r in (0.1, 0.5, 1.0, 1.5)
        ]
        assert values == sorted(values)

    def test_prob_busy_bounds(self):
        p = cs_id_long_host_prob_busy(0.8, 0.4)
        assert 0.4 < p < 1.0  # at least the long load, below saturation

    def test_closed_form_matches_regenerative_cycle(self):
        """P(busy) = (rho_s + rho_l)/(1 + rho_s) must agree with the
        explicit cycle computation for *any* mean sizes — the means cancel
        out of the cycle algebra."""
        for rho_s, rho_l in [(0.3, 0.2), (0.9, 0.5), (1.4, 0.1)]:
            closed = cs_id_long_host_prob_busy(rho_s, rho_l)
            for mean_short, mean_long in [(1.0, 1.0), (1.0, 10.0), (10.0, 1.0), (3.0, 0.2)]:
                via_cycle = cs_id_long_host_prob_busy_from_cycle(
                    rho_s, rho_l, mean_short, mean_long
                )
                assert via_cycle == pytest.approx(closed, rel=1e-12)

    def test_quadratic_boundary_closed_form(self):
        """Boundary solves rho_s^2 + rho_s rho_l - rho_s - 1 = 0."""
        for rho_l in (0.0, 0.25, 0.5, 0.75):
            b = cs_id_max_rho_s(rho_l)
            assert b * b + b * rho_l - b - 1.0 == pytest.approx(0.0, abs=1e-12)
