"""Tests for the ablation experiment modules (small instances)."""

import pytest

from repro.core import CsCqAnalysis, SystemParameters
from repro.experiments import (
    format_moment_ablation,
    format_truncation_ablation,
    moment_matching_ablation,
    truncation_ablation,
)


@pytest.mark.slow
class TestMomentAblation:
    def test_three_moments_sufficient(self):
        """Paper footnote 2: 'three moments provide sufficient accuracy'."""
        rows = moment_matching_ablation([0.9], rho_l=0.5, max_short=150, max_long=50)
        row = rows[0]
        assert row.rel_error(3) < 0.02
        assert row.rel_error(3) <= row.rel_error(1)

    def test_formatting(self):
        rows = moment_matching_ablation([0.5], rho_l=0.5, max_short=80, max_long=30)
        text = format_moment_ablation(rows)
        assert "3-moment err%" in text


@pytest.mark.slow
class TestTruncationAblation:
    def test_monotone_convergence_from_below(self):
        params = SystemParameters.from_loads(rho_s=1.2, rho_l=0.6)
        rows = truncation_ablation(params, [4, 8, 16, 32], max_short=120)
        values = [r.mean_response_short for r in rows]
        assert values == sorted(values)
        assert rows[0].truncation_mass > rows[-1].truncation_mass

    def test_formatting_includes_qbd_reference(self):
        params = SystemParameters.from_loads(rho_s=0.8, rho_l=0.5)
        rows = truncation_ablation(params, [5, 10], max_short=60)
        analysis = CsCqAnalysis(params)
        text = format_truncation_ablation(
            rows, analysis.mean_response_time_short(), analysis.solution.r_matrix.shape[0]
        )
        assert "QBD" in text and "phases per level" in text
