"""Telemetry unit behavior: spans, metrics, iteration traces, rendering.

The integration-level guarantees (disabled-mode bit-identity of solver
outputs, cross-process metric merge through the SweepRunner, the traced
CLI) live in ``tests/test_telemetry_integration.py``.
"""

import json

import pytest

from repro.telemetry import (
    DEFAULT_TIME_EDGES,
    Histogram,
    IterationTrace,
    MetricsRegistry,
    check_trace,
    counter_inc,
    coverage_fraction,
    current_collector,
    current_span_id,
    diff_traces,
    load_trace,
    registry,
    render_trace,
    self_times,
    set_span_attribute,
    span,
    top_spans,
    trace_scope,
    tracing_enabled,
)
from repro.telemetry.tracer import _NOOP, TraceCollector


# --------------------------------------------------------------------- #
# Spans
# --------------------------------------------------------------------- #


class TestSpanLifecycle:
    def test_disabled_span_is_the_shared_noop(self):
        assert not tracing_enabled()
        assert span("anything", key=1) is _NOOP
        assert span("else") is _NOOP
        # Chainable and inert.
        with span("x") as sp:
            assert sp.set("k", "v") is sp
        assert current_collector() is None

    def test_set_span_attribute_without_span_is_noop(self):
        set_span_attribute("orphan", 1)  # must not raise
        with trace_scope() as collector:
            set_span_attribute("orphan", 1)  # no open span inside scope either
        assert collector.records() == []

    def test_nesting_and_ordering(self):
        with trace_scope() as collector:
            with span("outer", depth=0):
                with span("inner.a"):
                    pass
                with span("inner.b"):
                    pass
        records = {r["name"]: r for r in collector.records()}
        assert set(records) == {"outer", "inner.a", "inner.b"}
        outer = records["outer"]
        assert outer["parent"] is None
        assert outer["attrs"] == {"depth": 0}
        for name in ("inner.a", "inner.b"):
            child = records[name]
            assert child["parent"] == outer["id"]
            assert outer["start"] <= child["start"] <= child["end"] <= outer["end"]
        assert records["inner.a"]["end"] <= records["inner.b"]["start"]

    def test_exception_closes_span_and_records_error(self):
        with trace_scope() as collector:
            with pytest.raises(ValueError):
                with span("doomed"):
                    raise ValueError("boom")
        (record,) = collector.records()
        assert record["end"] is not None
        assert record["attrs"]["error"] == "ValueError"

    def test_current_span_id_tracks_innermost(self):
        assert current_span_id() is None
        with trace_scope():
            with span("a"):
                outer_id = current_span_id()
                with span("b"):
                    assert current_span_id() not in (None, outer_id)
                assert current_span_id() == outer_id
        assert current_span_id() is None

    def test_trace_scope_restores_previous_state(self):
        with trace_scope() as outer:
            with span("kept"):
                with trace_scope() as inner:
                    with span("isolated"):
                        pass
                assert tracing_enabled()
                assert current_collector() is outer
        assert [r["name"] for r in outer.records()] == ["kept"]
        assert [r["name"] for r in inner.records()] == ["isolated"]
        assert not tracing_enabled()


class TestCollector:
    def test_adopt_rebases_and_renumbers(self):
        worker = TraceCollector("worker")
        with trace_scope() as driver:
            root = worker.start("task", {}, None)
            child = worker.start("solve", {}, root["id"])
            worker.finish(child)
            worker.finish(root)
            envelope = driver.add_complete("point", 5.0, 9.0, {"label": "p"})
            driver.adopt(worker.records(), envelope, at=5.0)
        records = {r["name"]: r for r in driver.records()}
        assert records["task"]["parent"] == records["point"]["id"]
        assert records["solve"]["parent"] == records["task"]["id"]
        # Earliest adopted record lands exactly at the envelope start.
        assert records["task"]["start"] == pytest.approx(5.0)
        # Durations survive the rebase.
        ids = [r["id"] for r in driver.records()]
        assert len(ids) == len(set(ids))

    def test_export_and_load_roundtrip(self, tmp_path):
        with trace_scope() as collector:
            with span("a", x=1):
                with span("b"):
                    pass
        path = tmp_path / "TRACE_test.jsonl"
        collector.export(path)
        header, records = load_trace(path)
        assert header["format"] == "repro-trace-v1"
        assert {r["name"] for r in records} == {"a", "b"}
        on_disk = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(on_disk) == 3  # header + 2 records


# --------------------------------------------------------------------- #
# IterationTrace
# --------------------------------------------------------------------- #


class TestIterationTrace:
    def test_small_run_keeps_every_iteration(self):
        trace = IterationTrace(limit=8)
        for i in range(5):
            trace.record(10.0 ** -i)
        summary = trace.as_dict()
        assert summary["iterations"] == 5
        assert summary["sampled_iterations"] == [1, 2, 3, 4, 5]
        assert summary["residuals"][-1] == pytest.approx(1e-4)

    def test_decimation_bounds_storage_and_keeps_final(self):
        trace = IterationTrace(limit=16)
        n = 10_000
        for i in range(n):
            trace.record(float(n - i))
        summary = trace.as_dict()
        assert summary["iterations"] == n
        assert len(summary["sampled_iterations"]) <= 16 + 1
        # The final residual is always reported, sampled or not.
        assert summary["sampled_iterations"][-1] == n
        assert summary["residuals"][-1] == 1.0
        # Samples stay ordered and start at iteration 1.
        assert summary["sampled_iterations"][0] == 1
        assert summary["sampled_iterations"] == sorted(summary["sampled_iterations"])

    def test_rejects_tiny_limit(self):
        with pytest.raises(ValueError):
            IterationTrace(limit=1)


# --------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------- #


class TestMetrics:
    def test_histogram_bucket_placement(self):
        h = Histogram(edges=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 10.0, 100.0):
            h.observe(v)
        d = h.as_dict()
        # Bucket i counts values <= edges[i]: edge-equal values land low.
        assert d["counts"] == [2, 2, 1]
        assert d["count"] == 5
        assert d["min"] == 0.5
        assert d["max"] == 100.0
        assert d["sum"] == pytest.approx(116.5)

    def test_histogram_merge_requires_matching_edges(self):
        a = Histogram(edges=(1.0,))
        b = Histogram(edges=(2.0,))
        with pytest.raises(ValueError):
            a.merge_dict(b.as_dict())

    def test_registry_snapshot_merge_reset(self):
        reg = MetricsRegistry()
        reg.counter_inc("solves", 2)
        reg.gauge_set("rho", 0.9)
        reg.observe("seconds", 0.02)
        other = MetricsRegistry()
        other.counter_inc("solves", 3)
        other.counter_inc("fits")
        other.gauge_set("rho", 0.3)
        other.observe("seconds", 2.0)
        reg.merge(other.snapshot())
        snap = reg.snapshot()
        assert snap["counters"] == {"solves": 5.0, "fits": 1.0}
        assert snap["gauges"] == {"rho": 0.3}  # last write wins
        assert snap["histograms"]["seconds"]["count"] == 2
        reg.reset()
        assert reg.is_empty()

    def test_module_registry_counter(self):
        registry().reset()
        try:
            counter_inc("test.counter")
            counter_inc("test.counter", 4)
            assert registry().counter("test.counter") == 5.0
        finally:
            registry().reset()

    def test_default_time_edges_are_sorted(self):
        assert list(DEFAULT_TIME_EDGES) == sorted(DEFAULT_TIME_EDGES)


# --------------------------------------------------------------------- #
# Rendering / analysis
# --------------------------------------------------------------------- #


def _record(id, parent, name, start, end, attrs=None):
    return {
        "id": id,
        "parent": parent,
        "name": name,
        "start": start,
        "end": end,
        "attrs": attrs or {},
    }


class TestRender:
    def test_self_time_subtracts_child_union(self):
        records = [
            _record(1, None, "root", 0.0, 10.0),
            # Overlapping children: union is [1, 6], not 7s.
            _record(2, 1, "a", 1.0, 5.0),
            _record(3, 1, "b", 3.0, 6.0),
        ]
        selfs = self_times(records)
        assert selfs[1] == pytest.approx(5.0)
        assert selfs[2] == pytest.approx(4.0)
        assert selfs[3] == pytest.approx(3.0)

    def test_check_trace_flags_problems(self):
        clean = [
            _record(1, None, "root", 0.0, 2.0),
            _record(2, 1, "child", 0.5, 1.5),
        ]
        assert check_trace(clean) == []
        unclosed = [_record(1, None, "root", 0.0, None)]
        assert any("never closed" in p for p in check_trace(unclosed))
        negative = [_record(1, None, "root", 2.0, 1.0)]
        assert any("negative duration" in p for p in check_trace(negative))
        orphan = [_record(2, 99, "child", 0.0, 1.0)]
        assert any("missing parent" in p for p in check_trace(orphan))
        # Child extends outside its parent: negative *raw* self-time.
        outside = [
            _record(1, None, "root", 0.0, 1.0),
            _record(2, 1, "child", 0.0, 3.0),
        ]
        assert any("negative self-time" in p for p in check_trace(outside))

    def test_coverage_fraction(self):
        records = [
            _record(1, None, "root", 0.0, 10.0),
            _record(2, 1, "work", 0.0, 9.0),
        ]
        assert coverage_fraction(records) == pytest.approx(0.9)

    def test_render_tree_and_topk(self):
        records = [
            _record(1, None, "root", 0.0, 1.0, {"run": "t"}),
            _record(2, 1, "slow", 0.0, 0.9),
            _record(3, 1, "fast", 0.9, 0.95),
        ]
        out = render_trace(records, top=2)
        assert "root" in out and "└─" in out or "├─" in out
        assert "top 2 spans by self-time" in out
        assert "instrumented coverage" in out
        names = [r["name"] for r, _ in top_spans(records, 2)]
        assert names[0] == "slow"

    def test_render_flags_non_converged(self):
        records = [
            _record(1, None, "root", 0.0, 1.0),
            _record(2, 1, "solver.rung.successive-substitution", 0.0, 0.5,
                    {"accepted": False, "iterations": 5000}),
        ]
        out = render_trace(records)
        assert "flagged (non-converged or errored)" in out
        assert "successive-substitution" in out

    def test_diff_traces(self):
        a = [
            _record(1, None, "root", 0.0, 1.0),
            _record(2, 1, "qbd.solve", 0.0, 0.4),
        ]
        b = [
            _record(1, None, "root", 0.0, 2.0),
            _record(2, 1, "qbd.solve", 0.0, 0.8),
            _record(3, 1, "fit", 0.8, 1.0),
        ]
        out = diff_traces(a, b)
        assert "qbd.solve" in out
        assert "new" in out  # "fit" only exists in b
        assert "total self-time" in out
