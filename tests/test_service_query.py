"""ScenarioQuery/ServiceAnswer serialization and the fidelity rungs."""

import math

import pytest

from repro.perf import SweepCache
from repro.robustness import ContractViolation, UnstableSystemError
from repro.service import FIDELITY_LEVELS, POLICIES, ScenarioQuery, ServiceAnswer
from repro.service import fidelity as F


def _query(**overrides):
    fields = dict(rho_s=0.5, rho_l=0.5, case={"name": "a"}, threshold=2.5)
    fields.update(overrides)
    return ScenarioQuery(**fields)


class TestScenarioQuery:
    def test_round_trips_through_dict(self):
        query = _query(deadline=1.5, label="q1")
        assert ScenarioQuery.from_dict(query.as_dict()) == query

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown query field"):
            ScenarioQuery.from_dict({"rho_s": 0.5, "rho_l": 0.5, "rho_m": 0.1})

    def test_from_dict_requires_loads(self):
        with pytest.raises(ValueError, match="rho_s and rho_l"):
            ScenarioQuery.from_dict({"rho_s": 0.5})

    def test_named_case_resolves_to_paper_workload(self):
        case = _query().workload()
        assert case.mean_short == 1.0

    def test_custom_case_fields(self):
        query = _query(case={"mean_short": 2.0, "mean_long": 20.0,
                             "short_scv": 1.0, "long_scv": 1.0})
        case = query.workload()
        assert case.mean_short == 2.0 and case.mean_long == 20.0

    def test_labels(self):
        assert _query(label="mine").resolved_label() == "mine"
        derived = _query().resolved_label()
        assert "rho_s=0.5" in derived and "rho_l=0.5" in derived


class TestServiceAnswer:
    def test_degraded_flags_everything_below_exact(self):
        for level in FIDELITY_LEVELS:
            answer = ServiceAnswer(label="q", status="answered", fidelity=level)
            assert answer.answered
            assert answer.degraded == (level != "exact")

    def test_rejected_is_not_degraded(self):
        answer = ServiceAnswer(label="q", status="rejected")
        assert not answer.answered and not answer.degraded


class TestCoarseBounds:
    def test_bounds_bracket_the_exact_answer(self):
        query = _query()
        bounds = F.coarse_bounds(query)
        exact = F.exact_rung(query)
        for policy in POLICIES:
            assert bounds[policy]["stable"]
            assert bounds[policy]["lower"] <= exact[policy] <= bounds[policy]["upper"]

    def test_dedicated_upper_is_its_own_exact_value(self):
        # Dominance: the Dedicated M/G/1 closed form IS the Dedicated answer.
        query = _query()
        bounds = F.coarse_bounds(query)
        exact = F.exact_rung(query)
        assert exact["Dedicated"] == pytest.approx(bounds["Dedicated"]["upper"])

    def test_unstable_policies_are_marked(self):
        bounds = F.coarse_bounds(_query(rho_s=1.2, rho_l=0.3))
        assert not bounds["Dedicated"]["stable"]
        assert bounds["CS-CQ"]["stable"]  # cycle stealing extends the region
        assert math.isinf(bounds["CS-CQ"]["upper"])  # no finite dominance cap

    def test_bound_values_report_conservative_uppers(self):
        bounds = F.coarse_bounds(_query())
        values = F.bound_values(bounds)
        assert values["CS-CQ"] == bounds["CS-CQ"]["upper"]


class TestValidation:
    def test_accepts_values_inside_bounds(self):
        query = _query()
        F.validate_against_bounds(F.exact_rung(query), F.coarse_bounds(query))

    def test_rejects_grossly_inflated_values(self):
        query = _query()
        bounds = F.coarse_bounds(query)
        corrupted = {p: v * 100.0 for p, v in F.exact_rung(query).items()}
        with pytest.raises(ContractViolation, match="dominance bound"):
            F.validate_against_bounds(corrupted, bounds)

    def test_rejects_values_below_the_service_floor(self):
        query = _query()
        bounds = F.coarse_bounds(query)
        with pytest.raises(ContractViolation, match="service-time floor"):
            F.validate_against_bounds({"CS-CQ": 0.001}, bounds)

    def test_rejects_finite_value_for_unstable_policy(self):
        bounds = F.coarse_bounds(_query(rho_s=1.2, rho_l=0.3))
        with pytest.raises(ContractViolation, match="unstable"):
            F.validate_against_bounds({"Dedicated": 5.0}, bounds)

    def test_nonfinite_values_are_exempt(self):
        bounds = F.coarse_bounds(_query())
        F.validate_against_bounds(
            {"CS-ID": float("nan"), "CS-CQ": float("inf")}, bounds
        )


class TestRungs:
    def test_truncated_rung_approximates_the_exact_cs_cq(self):
        query = _query()
        exact = F.exact_rung(query)
        approx = F.truncated_rung(query)
        assert approx["CS-CQ"] == pytest.approx(exact["CS-CQ"], rel=0.05)
        assert math.isnan(approx["CS-ID"])  # honestly unavailable
        assert approx["Dedicated"] == pytest.approx(exact["Dedicated"])

    def test_truncated_rung_shrinks_with_the_budget(self):
        # Tiny remaining budget selects the smallest truncation; the
        # answer is coarser but still inside the certified bounds.
        query = _query()
        bounds = F.coarse_bounds(query)
        small = F.truncated_rung(query, budget_remaining=0.0)
        F.validate_against_bounds(small, bounds)

    def test_cached_rung_replays_only_stored_answers(self):
        query = _query()
        cache = SweepCache()
        assert F.cached_rung(query, cache) is None
        values = F.exact_rung(query)
        F.store_answer(query, values, cache)
        assert F.cached_rung(query, cache) == values
        assert F.cached_rung(query, None) is None

    def test_answer_key_ignores_phrasing(self):
        a = _query(label="one", threshold=1.0, deadline=9.0)
        b = _query(label="two", threshold=2.0, deadline=1.0)
        assert F.answer_key(a) == F.answer_key(b)
        assert F.answer_key(a) != F.answer_key(_query(rho_s=0.51))


class TestVerdict:
    def test_partitions_policies(self):
        bounds = F.coarse_bounds(_query())
        values = {"Dedicated": 3.0, "CS-ID": 1.5, "CS-CQ": float("nan")}
        verdict = F.verdict_for(values, bounds, threshold=2.0, fidelity="exact")
        assert verdict["meets"] == ["CS-ID"]
        assert verdict["fails"] == ["Dedicated"]
        assert verdict["unknown"] == ["CS-CQ"]

    def test_bound_fidelity_admits_uncertainty(self):
        # Upper bound overshoots but the interval straddles the threshold:
        # the coarse rung must answer "unknown", not "fails".
        query = _query()
        bounds = F.coarse_bounds(query)
        values = F.bound_values(bounds)
        threshold = (bounds["CS-CQ"]["lower"] + bounds["CS-CQ"]["upper"]) / 2.0
        verdict = F.verdict_for(values, bounds, threshold, fidelity="bound")
        assert "CS-CQ" in verdict["unknown"]
        exact_verdict = F.verdict_for(values, bounds, threshold, fidelity="exact")
        assert "CS-CQ" in exact_verdict["fails"]

    def test_no_threshold_no_verdict(self):
        bounds = F.coarse_bounds(_query())
        assert F.verdict_for({}, bounds, None, "exact") is None
