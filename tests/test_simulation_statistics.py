"""Tests for the simulation statistics helpers."""

import numpy as np
import pytest

from repro.simulation import ConfidenceInterval, Welford, replication_interval


class TestWelford:
    def test_matches_numpy(self, rng):
        data = rng.normal(5.0, 2.0, size=10_000)
        acc = Welford()
        acc.add_many(data)
        assert acc.mean == pytest.approx(data.mean())
        assert acc.variance == pytest.approx(data.var(ddof=1), rel=1e-9)
        assert acc.count == len(data)

    def test_empty(self):
        acc = Welford()
        assert np.isnan(acc.mean)
        assert np.isnan(acc.variance)

    def test_single_observation(self):
        acc = Welford()
        acc.add(3.0)
        assert acc.mean == 3.0
        assert np.isnan(acc.variance)

    def test_numerical_stability_large_offset(self):
        acc = Welford()
        offset = 1e12
        values = [offset + v for v in (1.0, 2.0, 3.0)]
        acc.add_many(values)
        assert acc.variance == pytest.approx(1.0, rel=1e-6)


class TestConfidenceInterval:
    def test_bounds_and_contains(self):
        ci = ConfidenceInterval(mean=10.0, half_width=2.0)
        assert ci.lower == 8.0 and ci.upper == 12.0
        assert ci.contains(9.0) and not ci.contains(13.0)
        assert ci.relative_half_width == pytest.approx(0.2)

    def test_replication_interval_coverage(self, rng):
        """~95% of 95% CIs over normal replication means cover the truth."""
        hits = 0
        trials = 200
        for _ in range(trials):
            values = rng.normal(0.0, 1.0, size=8)
            if replication_interval(list(values)).contains(0.0):
                hits += 1
        assert hits / trials > 0.85

    def test_single_value(self):
        ci = replication_interval([2.5])
        assert ci.mean == 2.5
        assert np.isinf(ci.half_width)

    def test_empty(self):
        ci = replication_interval([])
        assert np.isnan(ci.mean)

    def test_shrinks_with_more_replications(self, rng):
        values = list(rng.normal(1.0, 0.5, size=40))
        few = replication_interval(values[:5])
        many = replication_interval(values)
        assert many.half_width < few.half_width
