"""Tests for the simulation statistics helpers."""

import numpy as np
import pytest
from scipy import signal

from repro.simulation import (
    ConfidenceInterval,
    Welford,
    batch_means_interval,
    replication_interval,
)


class TestWelford:
    def test_matches_numpy(self, rng):
        data = rng.normal(5.0, 2.0, size=10_000)
        acc = Welford()
        acc.add_many(data)
        assert acc.mean == pytest.approx(data.mean())
        assert acc.variance == pytest.approx(data.var(ddof=1), rel=1e-9)
        assert acc.count == len(data)

    def test_empty(self):
        acc = Welford()
        assert np.isnan(acc.mean)
        assert np.isnan(acc.variance)

    def test_single_observation(self):
        acc = Welford()
        acc.add(3.0)
        assert acc.mean == 3.0
        assert np.isnan(acc.variance)

    def test_numerical_stability_large_offset(self):
        acc = Welford()
        offset = 1e12
        values = [offset + v for v in (1.0, 2.0, 3.0)]
        acc.add_many(values)
        assert acc.variance == pytest.approx(1.0, rel=1e-6)

    def test_add_many_matches_repeated_add(self, rng):
        """Batch and one-at-a-time ingestion are the same accumulator."""
        data = rng.lognormal(0.0, 1.5, size=4_321)
        batched, repeated = Welford(), Welford()
        batched.add_many(data)
        for value in data:
            repeated.add(float(value))
        assert batched.count == repeated.count
        assert batched.mean == pytest.approx(repeated.mean, rel=0, abs=0)
        assert batched.variance == pytest.approx(repeated.variance, rel=0, abs=0)


class TestConfidenceInterval:
    def test_bounds_and_contains(self):
        ci = ConfidenceInterval(mean=10.0, half_width=2.0)
        assert ci.lower == 8.0 and ci.upper == 12.0
        assert ci.contains(9.0) and not ci.contains(13.0)
        assert ci.relative_half_width == pytest.approx(0.2)

    def test_replication_interval_coverage(self, rng):
        """~95% of 95% CIs over normal replication means cover the truth."""
        hits = 0
        trials = 200
        for _ in range(trials):
            values = rng.normal(0.0, 1.0, size=8)
            if replication_interval(list(values)).contains(0.0):
                hits += 1
        assert hits / trials > 0.85

    def test_single_value(self):
        ci = replication_interval([2.5])
        assert ci.mean == 2.5
        assert np.isinf(ci.half_width)

    def test_empty(self):
        ci = replication_interval([])
        assert np.isnan(ci.mean)

    def test_shrinks_with_more_replications(self, rng):
        values = list(rng.normal(1.0, 0.5, size=40))
        few = replication_interval(values[:5])
        many = replication_interval(values)
        assert many.half_width < few.half_width


class TestRelativeHalfWidth:
    """Tolerance math must stay well-defined for degenerate means."""

    def test_zero_mean_is_inf_not_error(self):
        ci = ConfidenceInterval(mean=0.0, half_width=1.0)
        assert ci.relative_half_width == float("inf")

    def test_denormal_mean_is_inf(self):
        ci = ConfidenceInterval(mean=5e-324, half_width=1.0)
        assert ci.relative_half_width == float("inf")

    def test_negative_mean_uses_magnitude(self):
        ci = ConfidenceInterval(mean=-4.0, half_width=1.0)
        assert ci.relative_half_width == pytest.approx(0.25)

    def test_nan_mean_stays_nan(self):
        ci = ConfidenceInterval(mean=float("nan"), half_width=1.0)
        assert np.isnan(ci.relative_half_width)

    def test_wider_than_any_finite_threshold(self):
        # The oracle's escalation rule compares against a finite bound;
        # a zero-mean interval must always read as "too wide".
        ci = ConfidenceInterval(mean=0.0, half_width=0.0)
        assert not (ci.relative_half_width <= 1e9)


class TestBatchMeans:
    def test_coverage_on_correlated_stream(self, rng):
        """Batch means keep ~nominal coverage on an AR(1) stream.

        phi = 0.7 gives an autocorrelation time of a few observations;
        batches of 1000 are effectively independent, so the t-interval
        over batch means should cover the true mean at close to the
        nominal 95% despite the serial correlation.
        """
        phi, mu, trials = 0.7, 3.0, 60
        hits = 0
        for _ in range(trials):
            shocks = rng.normal(0.0, 1.0, size=20_000)
            # y_t - mu = phi (y_{t-1} - mu) + eps_t via an IIR filter.
            centered = signal.lfilter([1.0], [1.0, -phi], shocks)
            interval = batch_means_interval(list(centered + mu), n_batches=20)
            hits += interval.contains(mu)
        assert hits / trials > 0.85

    def test_correlated_stream_needs_wider_intervals(self, rng):
        """The AR(1) interval is wider than an iid one of equal variance.

        This is the failure a naive per-observation t-interval makes:
        positive autocorrelation inflates the variance of the mean, and
        batching must pick that up.
        """
        phi = 0.9
        shocks = rng.normal(0.0, 1.0, size=50_000)
        correlated = signal.lfilter([1.0], [1.0, -phi], shocks)
        iid = rng.normal(0.0, correlated.std(), size=50_000)
        wide = batch_means_interval(list(correlated), n_batches=25)
        narrow = batch_means_interval(list(iid), n_batches=25)
        assert wide.half_width > 2.0 * narrow.half_width

    def test_rejects_too_few_observations(self):
        with pytest.raises(ValueError):
            batch_means_interval([1.0] * 10, n_batches=20)

    def test_rejects_single_batch(self):
        with pytest.raises(ValueError):
            batch_means_interval([1.0] * 100, n_batches=1)
