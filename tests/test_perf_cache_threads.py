"""SweepCache thread-safety: concurrent readers, one value per key."""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.perf import SweepCache, active_cache, use_cache
from repro.perf.cache import cached


class TestConcurrentAccess:
    def test_concurrent_readers_see_one_object_per_key(self):
        cache = SweepCache()
        barrier = threading.Barrier(8)
        computed = []
        lock = threading.Lock()

        def compute(key):
            with lock:
                computed.append(key)
            return {"key": key}  # fresh object per compute call

        def reader(worker):
            barrier.wait()  # maximize contention on first lookups
            out = []
            for round_ in range(50):
                key = round_ % 5
                out.append(cache.get_or_compute("ns", key, lambda k=key: compute(k)))
            return out

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(reader, range(8)))

        # First store wins: every thread got the identical object per key.
        for key in range(5):
            winners = {id(r[i]) for r in results for i in range(len(r)) if r[i]["key"] == key}
            assert len(winners) == 1
        assert len(cache) == 5

    def test_every_lookup_is_counted_exactly_once(self):
        cache = SweepCache()
        n_threads, n_lookups = 8, 100

        def reader(_):
            for i in range(n_lookups):
                cache.get_or_compute("ns", i % 10, lambda: object())

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            list(pool.map(reader, range(n_threads)))

        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == n_threads * n_lookups
        # Duplicate concurrent computes are allowed, but at least one miss
        # per key and the rest must be hits on the stored value.
        assert stats["misses"] >= 10
        assert stats["entries"] == 10

    def test_contains_and_len_are_safe_during_writes(self):
        cache = SweepCache()
        stop = threading.Event()

        def writer():
            i = 0
            while not stop.is_set():
                cache.get_or_compute("ns", i, lambda: i)
                i += 1

        def prober():
            while not stop.is_set():
                cache.contains("ns", 3)
                len(cache)
                cache.stats()

        threads = [threading.Thread(target=writer), threading.Thread(target=prober)]
        for t in threads:
            t.start()
        import time

        time.sleep(0.2)
        stop.set()
        for t in threads:
            t.join()
        assert cache.contains("ns", 0)


class TestUseCacheScope:
    def test_use_cache_activates_an_existing_cache(self):
        cache = SweepCache()
        assert active_cache() is None
        with use_cache(cache) as active:
            assert active is cache
            assert active_cache() is cache
            assert cached("ns", "k", lambda: 41) == 41
            assert cached("ns", "k", lambda: 42) == 41  # hit
        assert active_cache() is None
        assert cache.contains("ns", "k")

    def test_use_cache_replaces_an_ambient_scope(self):
        outer, inner = SweepCache(), SweepCache()
        with use_cache(outer):
            with use_cache(inner):
                cached("ns", "k", lambda: "inner-value")
            assert active_cache() is outer
        assert inner.contains("ns", "k")
        assert not outer.contains("ns", "k")

    def test_worker_threads_can_each_enter_the_shared_scope(self):
        cache = SweepCache()

        def worker(i):
            # ContextVars don't cross threads: each worker enters itself.
            with use_cache(cache):
                return cached("ns", "shared", lambda: f"computed-by-{i}")

        with ThreadPoolExecutor(max_workers=4) as pool:
            values = set(pool.map(worker, range(16)))
        assert len(values) == 1  # one stored value served to all
