"""Tests for MAP/MMPP arrival processes (the paper's MAP generalization)."""

import numpy as np
import pytest

from repro.workloads import MarkovianArrivalProcess, PoissonProcess, mmpp2


class TestConstruction:
    def test_poisson_as_map(self):
        p = PoissonProcess(2.0)
        assert p.n_phases == 1
        assert p.rate == pytest.approx(2.0)

    def test_mmpp2_rate(self):
        m = mmpp2(rate_high=3.0, rate_low=1.0, switch_to_low=0.5, switch_to_high=0.5)
        # Equal switching -> phases equally likely -> mean rate 2.
        assert m.rate == pytest.approx(2.0)

    def test_mmpp2_asymmetric_rate(self):
        m = mmpp2(rate_high=4.0, rate_low=0.0, switch_to_low=1.0, switch_to_high=3.0)
        # pi_high = 3/4.
        assert m.rate == pytest.approx(3.0)

    def test_phase_stationary_sums_to_one(self):
        m = mmpp2(2.0, 0.5, 0.3, 0.7)
        assert m.phase_stationary.sum() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MarkovianArrivalProcess([[-1.0]], [[2.0]])  # rows don't cancel
        with pytest.raises(ValueError):
            MarkovianArrivalProcess([[0.0]], [[0.0]])  # zero diagonal
        with pytest.raises(ValueError):
            MarkovianArrivalProcess([[-1.0, 0.0]], [[1.0, 0.0]])  # non-square
        with pytest.raises(ValueError):
            mmpp2(1.0, 1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            PoissonProcess(0.0)


class TestSampling:
    def test_poisson_interarrivals_exponential(self, rng):
        sampler = PoissonProcess(2.0).interarrival_sampler(rng)
        gaps = np.array([sampler() for _ in range(100_000)])
        assert gaps.mean() == pytest.approx(0.5, rel=0.02)
        assert gaps.var() == pytest.approx(0.25, rel=0.05)  # scv 1

    def test_mmpp_mean_rate(self, rng):
        m = mmpp2(rate_high=3.0, rate_low=0.5, switch_to_low=0.4, switch_to_high=0.4)
        sampler = m.interarrival_sampler(rng)
        gaps = np.array([sampler() for _ in range(200_000)])
        assert 1.0 / gaps.mean() == pytest.approx(m.rate, rel=0.03)

    def test_mmpp_is_burstier_than_poisson(self, rng):
        m = mmpp2(rate_high=2.0, rate_low=0.0, switch_to_low=0.1, switch_to_high=0.1)
        sampler = m.interarrival_sampler(rng)
        gaps = np.array([sampler() for _ in range(100_000)])
        scv = gaps.var() / gaps.mean() ** 2
        assert scv > 1.5  # markedly burstier than Poisson

    def test_degenerate_mmpp_is_poisson(self, rng):
        m = mmpp2(rate_high=1.5, rate_low=1.5, switch_to_low=0.7, switch_to_high=0.7)
        sampler = m.interarrival_sampler(rng)
        gaps = np.array([sampler() for _ in range(100_000)])
        scv = gaps.var() / gaps.mean() ** 2
        assert scv == pytest.approx(1.0, abs=0.05)


@pytest.mark.slow
class TestSimulationIntegration:
    def test_poisson_map_matches_poisson_engine(self):
        from repro.core import CsCqAnalysis, SystemParameters
        from repro.simulation import JobClass
        from repro.simulation.policies import CsCqSimulation

        p = SystemParameters.from_loads(rho_s=0.9, rho_l=0.5)
        sim = CsCqSimulation(
            p,
            seed=3,
            warmup_jobs=30_000,
            measured_jobs=300_000,
            arrival_processes={
                JobClass.SHORT: PoissonProcess(p.lam_s),
                JobClass.LONG: PoissonProcess(p.lam_l),
            },
        ).run()
        analysis = CsCqAnalysis(p)
        assert sim.mean_response_short == pytest.approx(
            analysis.mean_response_time_short(), rel=0.03
        )

    def test_burstiness_hurts_shorts(self):
        from repro.core import SystemParameters
        from repro.simulation import JobClass
        from repro.simulation.policies import CsCqSimulation

        p = SystemParameters.from_loads(rho_s=0.9, rho_l=0.5)
        bursty = mmpp2(rate_high=1.8, rate_low=0.0, switch_to_low=0.2, switch_to_high=0.2)
        assert bursty.rate == pytest.approx(p.lam_s)
        sim_bursty = CsCqSimulation(
            p, seed=4, warmup_jobs=20_000, measured_jobs=200_000,
            arrival_processes={JobClass.SHORT: bursty},
        ).run()
        sim_poisson = CsCqSimulation(
            p, seed=4, warmup_jobs=20_000, measured_jobs=200_000
        ).run()
        assert sim_bursty.mean_response_short > 1.5 * sim_poisson.mean_response_short
