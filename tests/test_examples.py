"""Smoke tests keeping the example scripts from rotting."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


ALL_EXAMPLES = [
    "quickstart",
    "capacity_planning",
    "supercomputing_center",
    "mg2sjf_comparison",
    "validation_study",
    "heterogeneous_hosts",
    "response_distributions",
]


class TestExamplesImportable:
    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_has_main(self, name):
        module = load_example(name)
        assert callable(module.main)


@pytest.mark.slow
class TestExamplesRun:
    def test_capacity_planning_runs(self, capsys):
        load_example("capacity_planning").main()
        out = capsys.readouterr().out
        assert "CS-CQ" in out and "1.500" in out  # the Theorem 1 hard limit

    def test_quickstart_runs(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "unstable" in out  # Dedicated at rho_s = 1
        assert "simulation" in out.lower()
