"""Tests for the slowdown metric (response / size)."""

import math

import pytest

from repro.core import SystemParameters
from repro.distributions import BoundedPareto, Exponential
from repro.simulation import JobClass, simulate, simulate_trace


class TestSlowdownAccounting:
    def test_trace_slowdown_exact(self):
        # Two unit jobs on one host: responses 1 and 2, slowdowns 1 and 2.
        trace = [(0.0, JobClass.SHORT, 1.0), (0.0, JobClass.SHORT, 1.0)]
        result = simulate_trace("dedicated", trace)
        assert result.mean_slowdown_short == pytest.approx(1.5)

    def test_no_jobs_gives_nan(self):
        trace = [(0.0, JobClass.SHORT, 1.0)]
        result = simulate_trace("dedicated", trace)
        assert math.isnan(result.mean_slowdown_long)

    def test_slowdown_at_least_one(self):
        p = SystemParameters.from_loads(rho_s=0.5, rho_l=0.3)
        result = simulate("cs-cq", p, seed=3, warmup_jobs=1_000, measured_jobs=20_000)
        assert result.mean_slowdown_short >= 1.0
        assert result.mean_slowdown_long >= 1.0


@pytest.mark.slow
class TestSlowdownOrdering:
    def test_cycle_stealing_improves_short_slowdown(self):
        """With bounded heavy-tailed shorts (so mean slowdown is finite and
        meaningful), cycle stealing improves the shorts' slowdown too."""
        short = BoundedPareto(0.2, 20.0, 1.5)
        lam_s = 0.9 / short.mean
        p = SystemParameters(
            lam_s=lam_s, lam_l=0.5,
            short_service=short, long_service=Exponential(1.0),
        )
        values = {}
        for policy in ("dedicated", "cs-id", "cs-cq"):
            result = simulate(
                policy, p, seed=9, warmup_jobs=20_000, measured_jobs=200_000
            )
            values[policy] = result.mean_slowdown_short
        assert values["cs-cq"] < values["cs-id"] < values["dedicated"]
