"""Tests for CS-CQ with phase-type short service (the sketched extension)."""

import numpy as np
import pytest

from repro.core import (
    CsCqAnalysis,
    CsCqPhAnalysis,
    SystemParameters,
    UnstableSystemError,
    first_completion_of_two,
)
from repro.distributions import Erlang, Exponential
from repro.simulation import simulate


class TestFirstCompletionOfTwo:
    def test_two_exponentials_is_exp_of_double_rate(self):
        ph = Exponential(2.0).as_phase_type()
        first = first_completion_of_two(ph, np.array([1.0]))
        assert first.mean == pytest.approx(1.0 / 4.0)
        assert first.scv == pytest.approx(1.0)

    def test_two_erlangs_mean(self, rng):
        ph = Erlang(2, 2.0).as_phase_type()
        eta = np.kron(ph.alpha, ph.alpha)
        first = first_completion_of_two(ph, eta)
        # Monte-Carlo check of the min of two fresh Erlang(2, 2) services.
        a = Erlang(2, 2.0).sample(rng, 200_000)
        b = Erlang(2, 2.0).sample(rng, 200_000)
        assert first.mean == pytest.approx(float(np.minimum(a, b).mean()), rel=0.01)

    def test_min_is_below_single(self):
        ph = Erlang(3, 3.0).as_phase_type()
        eta = np.kron(ph.alpha, ph.alpha)
        assert first_completion_of_two(ph, eta).mean < ph.mean


class TestExponentialReduction:
    @pytest.mark.parametrize("rho_s,rho_l", [(0.5, 0.3), (1.0, 0.5), (1.3, 0.4)])
    def test_reduces_to_published_analysis(self, rho_s, rho_l):
        """With exponential shorts the generalized chain IS the paper's."""
        p = SystemParameters.from_loads(rho_s=rho_s, rho_l=rho_l)
        base = CsCqAnalysis(p)
        general = CsCqPhAnalysis(p)
        assert general.mean_response_time_short() == pytest.approx(
            base.mean_response_time_short(), rel=1e-9
        )
        assert general.mean_response_time_long() == pytest.approx(
            base.mean_response_time_long(), rel=1e-9
        )

    def test_reduces_with_coxian_longs(self):
        p = SystemParameters.from_loads(rho_s=0.9, rho_l=0.5, long_scv=8.0)
        base = CsCqAnalysis(p)
        general = CsCqPhAnalysis(p)
        assert general.mean_response_time_short() == pytest.approx(
            base.mean_response_time_short(), rel=1e-9
        )


class TestPhShorts:
    def test_low_variability_shorts_reduce_response(self):
        """Erlang shorts (scv 1/2) wait less than exponential shorts."""
        exp = CsCqPhAnalysis(SystemParameters.from_loads(rho_s=1.0, rho_l=0.5))
        erl = CsCqPhAnalysis(
            SystemParameters.from_loads(rho_s=1.0, rho_l=0.5, short_scv=0.5)
        )
        assert erl.mean_response_time_short() < exp.mean_response_time_short()

    def test_high_variability_shorts_increase_response(self):
        exp = CsCqPhAnalysis(SystemParameters.from_loads(rho_s=1.0, rho_l=0.5))
        h2 = CsCqPhAnalysis(
            SystemParameters.from_loads(rho_s=1.0, rho_l=0.5, short_scv=4.0)
        )
        assert h2.mean_response_time_short() > exp.mean_response_time_short()

    def test_littles_law(self):
        p = SystemParameters.from_loads(rho_s=0.8, rho_l=0.4, short_scv=2.0)
        analysis = CsCqPhAnalysis(p)
        assert analysis.mean_number_short() == pytest.approx(
            p.lam_s * analysis.mean_response_time_short()
        )

    def test_stability_enforced(self):
        with pytest.raises(UnstableSystemError):
            CsCqPhAnalysis(
                SystemParameters.from_loads(rho_s=1.6, rho_l=0.5, short_scv=0.5)
            )

    def test_region_probabilities_positive(self):
        p = SystemParameters.from_loads(rho_s=0.9, rho_l=0.5, short_scv=0.5)
        r1, r2 = CsCqPhAnalysis(p).region_probabilities()
        assert r1 > 0 and r2 > 0 and r1 + r2 < 1

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "scv,rho_s,rho_l", [(0.5, 1.0, 0.5), (4.0, 1.0, 0.5), (2.0, 0.7, 0.3)]
    )
    def test_matches_simulation(self, scv, rho_s, rho_l):
        p = SystemParameters.from_loads(rho_s=rho_s, rho_l=rho_l, short_scv=scv)
        analysis = CsCqPhAnalysis(p)
        sim = simulate("cs-cq", p, seed=51, warmup_jobs=40_000, measured_jobs=400_000)
        assert analysis.mean_response_time_short() == pytest.approx(
            sim.mean_response_short, rel=0.04
        )
        assert analysis.mean_response_time_long() == pytest.approx(
            sim.mean_response_long, rel=0.02
        )
