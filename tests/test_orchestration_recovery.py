"""Crash-recovery acceptance tests for the orchestration layer.

Every scenario here uses :mod:`repro.orchestration.faults` to inject the
failure deterministically — no manual steps:

* a point whose worker *crashes* is classified ``failed`` while every
  sibling point completes;
* a point that *hangs* is reaped by the per-point timeout while sibling
  points complete;
* a sweep killed mid-run (injected abort, and a real SIGTERM against a
  driver process) resumes from the journal and produces output identical
  to an uninterrupted run, with the manifest marking the resumed points.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.experiments.base import format_panel
from repro.experiments.figures import figure4_panels
from repro.orchestration import (
    InjectedAbortError,
    SweepPoint,
    SweepRunner,
    inject_faults,
)


def _demo_points(n, **extra):
    return [
        SweepPoint(task="demo-point", kwargs={"x": i, **extra}, label=f"demo/x={i}")
        for i in range(n)
    ]


class TestCrashIsolation:
    def test_worker_crash_costs_one_point(self, tmp_path):
        runner = SweepRunner(
            workers=2,
            journal_path=tmp_path / "j.jsonl",
            manifest_path=tmp_path / "m.json",
        )
        with inject_faults(crash=("x=2",)):
            outcomes = runner.run(_demo_points(5))
        assert [o.status for o in outcomes] == ["ok", "ok", "failed", "ok", "ok"]
        crashed = outcomes[2]
        assert crashed.error["type"] == "WorkerCrashed"
        assert crashed.value is None
        # siblings are intact and the crash is journaled like any outcome
        assert [o.value["values"]["y"] for o in outcomes if o.ok] == [0, 1, 9, 16]
        manifest = json.loads((tmp_path / "m.json").read_text())
        assert manifest["counts"] == {
            "ok": 4, "degraded": 0, "suspect": 0, "failed": 1, "timeout": 0,
            "resumed": 0, "total": 5,
        }

    def test_slot_recovers_after_crash(self):
        # one worker slot: the point after the crash must reuse a fresh
        # process transparently
        runner = SweepRunner(workers=1)
        with inject_faults(crash=("x=0",)):
            outcomes = runner.run(_demo_points(3))
        assert [o.status for o in outcomes] == ["failed", "ok", "ok"]


class TestHangReaping:
    def test_hang_times_out_without_losing_siblings(self, tmp_path):
        runner = SweepRunner(
            workers=2,
            timeout=1.0,
            journal_path=tmp_path / "j.jsonl",
            manifest_path=tmp_path / "m.json",
        )
        start = time.monotonic()
        # hang_seconds far beyond the timeout: only the reaper can end it
        with inject_faults(hang=("x=1",), hang_seconds=60):
            outcomes = runner.run(_demo_points(5))
        elapsed = time.monotonic() - start
        assert [o.status for o in outcomes] == ["ok", "timeout", "ok", "ok", "ok"]
        hung = outcomes[1]
        assert hung.error["type"] == "PointTimeout"
        assert hung.error["context"]["timeout"] == 1.0
        # reaped promptly (timeout + kill grace), nowhere near the 60s hang
        assert elapsed < 20.0
        manifest = json.loads((tmp_path / "m.json").read_text())
        assert manifest["counts"]["timeout"] == 1
        assert manifest["counts"]["ok"] == 4


class TestAbortAndResume:
    def test_resumed_figure_panels_identical(self, tmp_path):
        grid = [0.3, 0.8, 1.4]
        baseline = "\n\n".join(
            format_panel(p) for p in figure4_panels(rho_s_values=grid)
        )

        journal_path = tmp_path / "j.jsonl"
        manifest_path = tmp_path / "m.json"

        def make_runner(resume):
            return SweepRunner(
                workers=2,
                journal_path=journal_path,
                manifest_path=manifest_path,
                resume=resume,
                run_name="figure4",
            )

        # kill the sweep after 4 completed points (crash mid-run)
        with inject_faults(abort_after=4):
            with pytest.raises(InjectedAbortError):
                figure4_panels(rho_s_values=grid, runner=make_runner(resume=False))
        interrupted = json.loads(manifest_path.read_text())
        assert interrupted["interrupted"] == "injected-abort"
        journaled = len(journal_path.read_text().splitlines())
        assert 0 < journaled < 6 * len(grid)  # partial progress survived

        # resume: completes the sweep and reproduces the baseline exactly
        panels = figure4_panels(rho_s_values=grid, runner=make_runner(resume=True))
        resumed_text = "\n\n".join(format_panel(p) for p in panels)
        assert resumed_text == baseline

        manifest = json.loads(manifest_path.read_text())
        assert manifest["interrupted"] is None
        assert manifest["counts"]["resumed"] == journaled
        assert manifest["counts"]["total"] == 6 * len(grid)
        assert manifest["counts"]["failed"] == 0
        resumed_marks = [p["resumed"] for p in manifest["points"]]
        assert sum(resumed_marks) == journaled


_SIGTERM_DRIVER = textwrap.dedent(
    """
    import sys
    from repro.orchestration import SweepPoint, SweepRunner

    tmp = sys.argv[1]
    points = [
        SweepPoint(task="demo-point", kwargs={"x": i, "sleep": 0.4},
                   label=f"demo/x={i}")
        for i in range(8)
    ]
    runner = SweepRunner(
        workers=1,
        journal_path=f"{tmp}/j.jsonl",
        manifest_path=f"{tmp}/m.json",
        run_name="sigterm-test",
    )
    runner.run(points)
    """
)


class TestSigterm:
    def test_sigterm_flushes_journal_and_resumes(self, tmp_path):
        env = dict(os.environ)
        src = Path(__file__).resolve().parent.parent / "src"
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        journal_path = tmp_path / "j.jsonl"
        proc = subprocess.Popen(
            [sys.executable, "-c", _SIGTERM_DRIVER, str(tmp_path)], env=env
        )
        try:
            # wait until at least one point is journaled, then SIGTERM
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if journal_path.exists() and journal_path.read_text().strip():
                    break
                time.sleep(0.05)
            else:
                pytest.fail("driver never journaled a point")
            proc.send_signal(signal.SIGTERM)
            returncode = proc.wait(timeout=30.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert returncode == 128 + signal.SIGTERM  # conventional 143

        flushed = [
            json.loads(line) for line in journal_path.read_text().splitlines()
        ]
        assert 0 < len(flushed) < 8  # lost at most the in-flight points
        assert all(r["status"] == "ok" for r in flushed)
        manifest = json.loads((tmp_path / "m.json").read_text())
        assert manifest["interrupted"] == "SIGTERM"

        # resume completes the remaining points with correct values
        points = [
            SweepPoint(
                task="demo-point",
                kwargs={"x": i, "sleep": 0.4},
                label=f"demo/x={i}",
            )
            for i in range(8)
        ]
        runner = SweepRunner(
            workers=0,
            journal_path=journal_path,
            manifest_path=tmp_path / "m.json",
            resume=True,
            run_name="sigterm-test",
        )
        outcomes = runner.run(points)
        assert [o.value["values"]["y"] for o in outcomes] == [i * i for i in range(8)]
        assert sum(o.resumed for o in outcomes) == len(flushed)
