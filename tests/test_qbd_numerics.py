"""Numerical-edge regression tests for the QBD solver hot path.

Covers the bugfix sweep: the representable tightened-fallback tolerance,
stagnation fail-fast in the logarithmic-reduction loop (scalar and
batched), and the cumulative R-power cache behind ``level_vector``.
"""

import numpy as np
import pytest

from repro.markov import QbdProcess, solve_g_matrix
from repro.markov.qbd import _STAGNATION_WINDOW, _tightened_tol, solve_g_matrix_batched
from repro.robustness import ConvergenceError


def mm1_qbd(lam: float, mu: float) -> QbdProcess:
    return QbdProcess(
        boundary_local=[np.zeros((1, 1))],
        boundary_up=[np.array([[lam]])],
        boundary_down=[np.array([[mu]])],
        a0=np.array([[lam]]),
        a1=np.zeros((1, 1)),
        a2=np.array([[mu]]),
    )


class TestTightenedTol:
    def test_never_below_a_few_eps(self):
        eps = float(np.finfo(float).eps)
        for tol in (0.0, 1e-300, 1e-16, 1e-15):
            assert _tightened_tol(tol) >= 8.0 * eps

    def test_clamps_the_historical_1e15_target(self):
        # The historical rung tightened to min(tol, 1e-15) — below what a
        # float64 step size around 1.0 can resolve, so the target was
        # unattainable and the rung burned its whole budget.
        assert _tightened_tol(1e-15) == 8.0 * float(np.finfo(float).eps)
        assert _tightened_tol(1e-15) > 1e-15

    def test_always_tightens_below_the_ladder_default(self):
        # The fallback rung always tightens relative to the ladder default
        # (1e-13): the result sits in (1e-15, 1e-13) for any caller tol.
        for tol in (1e-6, 1e-13, 1e-15, 0.0):
            tightened = _tightened_tol(tol)
            assert 1e-15 < tightened < 1e-13

    def test_monotone_and_representable(self):
        # Tightening must never produce a target a converging float64
        # iterate cannot reach: 1.0 + tightened must differ from 1.0.
        for tol in (1e-6, 1e-13, 1e-16, 0.0):
            tightened = _tightened_tol(tol)
            assert tightened <= max(tol, 8.0 * float(np.finfo(float).eps))
            assert 1.0 + tightened != 1.0


class TestStagnationFailFast:
    # A transient birth-death block (rho > 1): t plateaus at a constant,
    # so without stagnation detection the loop burns all of max_iter.
    A0 = np.array([[1.05]])
    A1 = np.array([[-2.05]])
    A2 = np.array([[1.0]])

    def test_scalar_stagnation_raises_early(self):
        with pytest.raises(ConvergenceError, match="stagnated") as excinfo:
            solve_g_matrix(self.A0, self.A1, self.A2, tol=1e-30, max_iter=500)
        iterations = excinfo.value.context["iterations"]
        # Fail-fast: the plateau is detected within the stagnation window,
        # not after exhausting the 500-iteration budget.
        assert iterations < 100
        assert excinfo.value.context["residual"] > 1e-30

    def test_converging_iterates_never_trip_the_window(self):
        g = solve_g_matrix(
            np.array([[0.3]]), np.array([[-1.3]]), np.array([[1.0]])
        )
        assert g[0, 0] == pytest.approx(1.0)

    def test_batched_stagnation_matches_scalar(self):
        # Stack the stagnating slice with a converging one: the plateau
        # slice comes back non-converged at the scalar detection point
        # while the healthy slice still converges.
        a0 = np.stack([self.A0, np.array([[0.6]])])
        a1 = np.stack([self.A1, np.array([[-1.6]])])
        a2 = np.stack([self.A2, self.A2])
        g, iterations, converged = solve_g_matrix_batched(
            a0, a1, a2, tol=1e-30, max_iter=500
        )
        assert not converged[0]
        assert converged[1]
        assert g[0, 0, 0] == 0.0  # non-converged slices stay zeroed
        with pytest.raises(ConvergenceError) as excinfo:
            solve_g_matrix(self.A0, self.A1, self.A2, tol=1e-30, max_iter=500)
        assert iterations[0] == excinfo.value.context["iterations"]
        assert iterations[0] >= _STAGNATION_WINDOW


class TestRPowerCache:
    def test_level_vector_extends_cumulatively(self):
        sol = mm1_qbd(0.5, 1.0).solve()
        b = sol.first_repeating_level
        # Mixed-order queries: the cache extends to the largest power seen
        # and holds exactly powers 0..max, each computed once.
        for level in (b + 5, b + 2, b + 7, b + 3):
            sol.level_vector(level)
        assert len(sol._r_powers) == 8
        rho = 0.5
        for k, power in enumerate(sol._r_powers):
            assert power[0, 0] == pytest.approx(rho**k)

    def test_repeated_queries_return_the_cached_object(self):
        sol = mm1_qbd(0.5, 1.0).solve()
        first = sol._r_power(4)
        assert sol._r_power(4) is first
        # A smaller power afterwards must not rebuild anything.
        n = len(sol._r_powers)
        sol._r_power(2)
        assert len(sol._r_powers) == n

    def test_level_vector_values_unchanged(self):
        lam, mu = 0.5, 1.0
        sol = mm1_qbd(lam, mu).solve()
        rho = lam / mu
        for level in (0, 1, 3, 6):
            expected = (1.0 - rho) * rho**level
            assert sol.level_probability(level) == pytest.approx(expected, rel=1e-9)

    def test_matrix_power_work_is_linear_not_quadratic(self):
        # Regression for the hot-path bug: level_vector(n) used to call
        # matrix_power(R, n - b) per level, re-multiplying from scratch.
        # Count multiplications via a spy on the R matrix.
        sol = mm1_qbd(0.5, 1.0).solve()

        class CountingMatrix(np.ndarray):
            pass

        counted = sol.r_matrix.view(CountingMatrix)
        counted.mults = 0

        original_matmul = CountingMatrix.__rmatmul__

        def counting_rmatmul(self, other):
            type(self).mults_seen += 1
            return np.asarray(other) @ np.asarray(self)

        CountingMatrix.mults_seen = 0
        CountingMatrix.__rmatmul__ = counting_rmatmul
        try:
            sol.r_matrix = counted
            top = sol.first_repeating_level + 10
            for level in range(sol.first_repeating_level, top + 1):
                sol.level_vector(level)
            # One extension product per new power: exactly `top - b`
            # multiplications for powers 1..10 (power 0 is the identity).
            assert CountingMatrix.mults_seen == 10
        finally:
            CountingMatrix.__rmatmul__ = original_matmul
