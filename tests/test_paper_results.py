"""Assertions of the paper's headline quantitative claims (Section 5).

These tests pin the reproduced *shape* of every claim the text states in
words or numbers.  The paper's own values are read off plots, so loose
tolerances are used where appropriate; exact claims (stability boundaries,
25% penalty) are asserted tightly.
"""

import numpy as np
import pytest

from repro.core import (
    GOLDEN_RATIO,
    CsCqAnalysis,
    CsIdAnalysis,
    DedicatedAnalysis,
    SystemParameters,
    cs_cq_max_rho_s,
    cs_id_max_rho_s,
)
from repro.workloads import case_by_name


def params_a(rho_s, rho_l=0.5, **kw):
    return SystemParameters.from_loads(rho_s=rho_s, rho_l=rho_l, **kw)


class TestSection5Figure4CaseA:
    """'shorts 1, longs 1', exponential, rho_l = 0.5."""

    def test_order_of_magnitude_gain_at_high_rho_s(self):
        """'For rho_s > 0.8, the mean improvement of cycle stealing
        algorithms over Dedicated is over an order of magnitude' (as
        Dedicated diverges toward rho_s = 1)."""
        p = params_a(0.97)
        dedicated = DedicatedAnalysis(p).mean_response_time_short()
        cs_cq = CsCqAnalysis(p).mean_response_time_short()
        assert dedicated / cs_cq > 10.0

    def test_values_as_rho_s_approaches_one(self):
        """'As rho_s -> 1 ... it is 4 under CS-ID and 3 under CS-CQ.'"""
        p = params_a(1.0)
        assert CsIdAnalysis(p).mean_response_time_short() == pytest.approx(4.0, abs=0.5)
        assert CsCqAnalysis(p).mean_response_time_short() == pytest.approx(3.0, abs=0.7)

    def test_cs_cq_finite_where_cs_id_diverges(self):
        """'As rho_s -> (CS-ID's asymptote), CS-ID -> infinity whereas it is
        approximately 7 under CS-CQ.'"""
        boundary = cs_id_max_rho_s(0.5)
        p = params_a(boundary - 1e-3)
        assert CsIdAnalysis(p).mean_response_time_short() > 50
        cs_cq = CsCqAnalysis(p).mean_response_time_short()
        assert cs_cq == pytest.approx(7.0, abs=2.5)

    def test_long_penalty_at_rho_s_one(self):
        """'Even when rho_s = 1, the penalty to long jobs is only 10% under
        CS-CQ and 25% under CS-ID.'"""
        p = params_a(1.0)
        dedicated_long = 2.0  # M/M/1 at rho = 0.5, mean 1
        cs_cq_penalty = CsCqAnalysis(p).mean_response_time_long() / dedicated_long - 1
        cs_id_penalty = CsIdAnalysis(p).mean_response_time_long() / dedicated_long - 1
        assert cs_id_penalty == pytest.approx(0.25, abs=0.01)
        assert cs_cq_penalty == pytest.approx(0.10, abs=0.04)
        assert cs_cq_penalty < cs_id_penalty  # CS-CQ penalizes longs *less*


class TestSection5Figure4CaseB:
    """'shorts 1, longs 10': the penalty drops to ~1% / ~2.5%."""

    def test_tiny_long_penalty(self):
        p = params_a(1.0, mean_long=10.0)
        dedicated_long = DedicatedAnalysis(
            params_a(0.5, mean_long=10.0)
        ).mean_response_time_long()
        cs_cq_penalty = CsCqAnalysis(p).mean_response_time_long() / dedicated_long - 1
        cs_id_penalty = CsIdAnalysis(p).mean_response_time_long() / dedicated_long - 1
        assert cs_cq_penalty == pytest.approx(0.01, abs=0.01)
        assert cs_id_penalty == pytest.approx(0.025, abs=0.015)


class TestSection5Figure4CaseC:
    """'shorts 10, longs 1' (pathological): larger but bounded penalty."""

    def test_penalty_larger_than_case_a_but_benefit_dominates(self):
        case = case_by_name("c")
        p = case.params(1.0, 0.5)
        dedicated_long = 2.0  # M/M/1 rho=0.5 mean 1
        cs_cq_long_penalty = (
            CsCqAnalysis(p).mean_response_time_long() - dedicated_long
        )
        # Benefit to shorts vs Dedicated at rho_s slightly below 1:
        p9 = case.params(0.97, 0.5)
        benefit = (
            DedicatedAnalysis(p9).mean_response_time_short()
            - CsCqAnalysis(p9).mean_response_time_short()
        )
        assert cs_cq_long_penalty > 0.2  # visibly penalized (Figure 4c)
        assert benefit > cs_cq_long_penalty  # 'dominated by the benefit'


class TestFigure5HighVariability:
    def test_percentage_penalty_lessened(self):
        """'The percentage penalty of the long jobs is considerably lessened
        when the variability of long job service times is increased.'"""
        penalty = {}
        for scv in (1.0, 8.0):
            p = params_a(1.2, long_scv=scv)
            dedicated_long = DedicatedAnalysis(
                params_a(0.5, long_scv=scv)
            ).mean_response_time_long()
            penalty[scv] = (
                CsCqAnalysis(p).mean_response_time_long() / dedicated_long - 1
            )
        assert penalty[8.0] < penalty[1.0]

    def test_case_a_penalties_under_bounds(self):
        """'The penalty to longs is still under 10% for CS-ID and under 5%
        for CS-CQ' (case (a), C^2 = 8, at rho_s = 1 — the reference load of
        the exponential-case penalty discussion)."""
        case = case_by_name("a", coxian_longs=True)
        dedicated_long = DedicatedAnalysis(
            case.params(0.5, 0.5)
        ).mean_response_time_long()
        p = case.params(1.0, 0.5)
        assert LongPenalty.cs_id(p, dedicated_long) < 0.10
        assert LongPenalty.cs_cq(p, dedicated_long) < 0.05

    def test_case_b_penalty_under_one_percent(self):
        """'In the case where shorts are shorter than longs (case (b)), the
        penalty to long jobs is less than 1% under both algorithms.'"""
        case = case_by_name("b", coxian_longs=True)
        dedicated_long = DedicatedAnalysis(
            case.params(0.5, 0.5)
        ).mean_response_time_long()
        p = case.params(1.0, 0.5)
        assert LongPenalty.cs_id(p, dedicated_long) < 0.01
        assert LongPenalty.cs_cq(p, dedicated_long) < 0.01

    def test_benefit_to_shorts_insensitive_to_long_variability(self):
        """'Increasing the variability of the long job service time does not
        seem to have much effect on the mean benefit to short jobs' — the
        curves are visually indistinguishable at figure scale (0-25)."""
        t_exp = CsCqAnalysis(params_a(1.0, long_scv=1.0)).mean_response_time_short()
        t_cox = CsCqAnalysis(params_a(1.0, long_scv=8.0)).mean_response_time_short()
        assert abs(t_cox - t_exp) < 1.0  # < 4% of the figure's y-range


class LongPenalty:
    @staticmethod
    def cs_id(params, dedicated_long):
        return CsIdAnalysis(params).mean_response_time_long() / dedicated_long - 1

    @staticmethod
    def cs_cq(params, dedicated_long):
        return CsCqAnalysis(params).mean_response_time_long() / dedicated_long - 1


class TestTheorem1:
    def test_stability_boundaries(self):
        """Theorem 1 + the Section 3 narrative about Figure 3."""
        assert cs_cq_max_rho_s(0.0) == pytest.approx(2.0)
        assert cs_id_max_rho_s(0.0) == pytest.approx(GOLDEN_RATIO)
        for rho_l in np.arange(0.05, 1.0, 0.1):
            assert cs_cq_max_rho_s(rho_l) == pytest.approx(2.0 - rho_l)

    def test_fig6_stability_narrative(self):
        """'when rho_s = 1.5, CS-ID is only stable for rho_l < ~0.135 and
        CS-CQ only for rho_l < 0.5.'"""
        from repro.core import cs_id_is_stable, cs_cq_is_stable

        assert cs_cq_is_stable(1.5 - 1e-9, 0.49)
        assert not cs_cq_is_stable(1.5, 0.5)
        assert cs_id_is_stable(1.5, 0.1)
        assert not cs_id_is_stable(1.5, 0.2)


class TestConclusionOrdering:
    def test_cs_cq_always_superior(self):
        """'Thus CS-CQ is always superior to CS-ID, and both are far better
        than Dedicated' — checked across a load grid, both classes."""
        for rho_s in (0.4, 0.8, 1.0):
            for rho_l in (0.3, 0.5, 0.7):
                p = SystemParameters.from_loads(rho_s=rho_s, rho_l=rho_l)
                cq, csid = CsCqAnalysis(p), CsIdAnalysis(p)
                assert (
                    cq.mean_response_time_short() < csid.mean_response_time_short()
                )
                assert cq.mean_response_time_long() < csid.mean_response_time_long()
                if rho_s < 1.0:
                    dedicated = DedicatedAnalysis(p)
                    assert (
                        csid.mean_response_time_short()
                        < dedicated.mean_response_time_short()
                    )
