"""Structural invariants of the policy simulators, checked at every event.

These subclasses instrument ``start_service`` to assert the defining
properties of each policy *during* a run — e.g. CS-CQ's renaming invariant
(at most one long ever in service) — so a silent logic regression cannot
hide behind statistically plausible means.
"""

import pytest

from repro.core import SystemParameters
from repro.simulation import JobClass
from repro.simulation.policies import (
    CsCqSimulation,
    CsIdSimulation,
    DedicatedSimulation,
)


class CheckedCsCq(CsCqSimulation):
    def start_service(self, host, job):
        if job.job_class is JobClass.LONG:
            # Renaming invariant: no second long may enter service.
            assert not self._long_in_service(), "two longs in service under CS-CQ"
        else:
            # A short may never start while a long is WAITING and a host
            # could serve it (the long has priority at a freed host).
            if self._long_queue and not self._long_in_service():
                raise AssertionError("short started past a waiting long")
        super().start_service(host, job)


class CheckedCsId(CsIdSimulation):
    def start_service(self, host, job):
        if job.job_class is JobClass.LONG:
            assert host == 1, "long served at the short host under CS-ID"
        super().start_service(host, job)
        # Shorts at the long host must have started with zero wait.
        if job.job_class is JobClass.SHORT and host == 1:
            assert job.waiting_time == pytest.approx(0.0)


class CheckedDedicated(DedicatedSimulation):
    def start_service(self, host, job):
        expected = 0 if job.job_class is JobClass.SHORT else 1
        assert host == expected, "job crossed hosts under Dedicated"
        super().start_service(host, job)


PARAMS = SystemParameters.from_loads(rho_s=1.0, rho_l=0.5)


class TestInvariants:
    def test_cs_cq_invariants_hold(self):
        CheckedCsCq(PARAMS, seed=5, warmup_jobs=1_000, measured_jobs=60_000).run()

    def test_cs_id_invariants_hold(self):
        CheckedCsId(PARAMS, seed=6, warmup_jobs=1_000, measured_jobs=60_000).run()

    def test_dedicated_invariants_hold(self):
        p = SystemParameters.from_loads(rho_s=0.8, rho_l=0.5)
        CheckedDedicated(p, seed=7, warmup_jobs=1_000, measured_jobs=60_000).run()

    def test_cs_cq_invariants_hold_under_heterogeneity(self):
        CheckedCsCq(
            PARAMS, seed=8, warmup_jobs=1_000, measured_jobs=40_000,
            host_speeds=(1.0, 2.0),
        ).run()

    def test_work_conservation_of_mgk(self):
        """Under M/G/k no host may idle while jobs wait."""
        from repro.simulation.policies import MgkSimulation

        class CheckedMgk(MgkSimulation):
            def on_host_free(self, host):
                super().on_host_free(host)
                if self._queue:
                    assert all(j is not None for j in self.host_job), (
                        "idle host with a nonempty central queue"
                    )

        p = SystemParameters.from_loads(rho_s=0.9, rho_l=0.5)
        CheckedMgk(p, seed=9, warmup_jobs=1_000, measured_jobs=40_000).run()
