"""Tests for the fallback ladder and the hardened R-matrix solve."""

import numpy as np
import pytest

from repro.markov import solve_r_matrix, solve_r_matrix_with_diagnostics
from repro.markov.qbd import _solve_r_substitution
from repro.robustness import (
    ConvergenceError,
    ReproError,
    Rung,
    RungAttempt,
    run_fallback_ladder,
)


def _ok_rung(name, value, residual, max_residual=1e-8):
    return Rung(name, lambda: (value, residual, 1), max_residual=max_residual)


class TestLadder:
    def test_first_acceptable_rung_wins(self):
        value, attempts = run_fallback_ladder(
            [_ok_rung("fast", "A", 1e-12), _ok_rung("slow", "B", 1e-12)], "solve"
        )
        assert value == "A"
        assert [a.name for a in attempts] == ["fast"]
        assert attempts[0].accepted

    def test_falls_through_on_bad_residual(self):
        value, attempts = run_fallback_ladder(
            [_ok_rung("fast", "A", 1e-3), _ok_rung("slow", "B", 1e-12)], "solve"
        )
        assert value == "B"
        assert [a.accepted for a in attempts] == [False, True]

    def test_falls_through_on_exception(self):
        def explode():
            raise ConvergenceError("nope", residual=0.5, iterations=7)

        value, attempts = run_fallback_ladder(
            [Rung("fast", explode, max_residual=1e-8), _ok_rung("slow", "B", 1e-12)],
            "solve",
        )
        assert value == "B"
        assert attempts[0].error is not None
        assert attempts[0].residual == pytest.approx(0.5)
        assert attempts[0].iterations == 7

    def test_exhaustion_raises_typed_error_with_log(self):
        rungs = [_ok_rung("r1", "A", 1e-3), _ok_rung("r2", "B", 1e-4)]
        with pytest.raises(ConvergenceError) as info:
            run_fallback_ladder(rungs, "R-matrix solve")
        assert info.value.context["rungs_tried"] == 2
        assert info.value.residual == pytest.approx(1e-4)
        assert "r1" in str(info.value) and "r2" in str(info.value)

    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError):
            run_fallback_ladder([], "solve")

    def test_attempt_describe(self):
        ok = RungAttempt("x", accepted=True, residual=1e-12, iterations=3)
        assert "accepted" in ok.describe() and "3 iters" in ok.describe()
        bad = RungAttempt("y", accepted=False, error="ValueError: nope")
        assert "raised" in bad.describe()


class TestSubstitutionHardening:
    """Satellite fix: no silent unconverged return after max_iter."""

    def test_raises_convergence_error_at_max_iter(self):
        a0 = np.array([[0.7]])
        a1 = np.array([[-1.7]])
        a2 = np.array([[1.0]])
        with pytest.raises(ConvergenceError) as info:
            _solve_r_substitution(a0, a1, a2, tol=1e-13, max_iter=3)
        assert info.value.iterations == 3
        assert info.value.residual is not None
        assert info.value.residual > 0.0

    def test_converges_when_allowed_enough_iterations(self):
        a0 = np.array([[0.7]])
        a1 = np.array([[-1.7]])
        a2 = np.array([[1.0]])
        r, iterations = _solve_r_substitution(a0, a1, a2, tol=1e-13, max_iter=500000)
        assert r[0, 0] == pytest.approx(0.7)
        assert iterations > 1

    def test_budget_threads_through_ladder(self):
        """The substitution rung receives the caller's budget, scaled."""
        a0 = np.array([[0.7]])
        a1 = np.array([[-1.7]])
        a2 = np.array([[1.0]])
        r, diag = solve_r_matrix_with_diagnostics(a0, a1, a2, max_iter=200)
        assert r[0, 0] == pytest.approx(0.7)
        assert diag.iterations == diag.rungs[-1].iterations
        assert diag.iterations is not None and diag.iterations >= 1


class TestRMatrixDiagnostics:
    def test_diagnostics_record_accepted_rung(self):
        a0, a2 = np.array([[0.7]]), np.array([[1.0]])
        a1 = np.array([[-1.7]])
        r, diag = solve_r_matrix_with_diagnostics(a0, a1, a2)
        assert r[0, 0] == pytest.approx(0.7)
        assert diag.method == "logarithmic-reduction"
        assert diag.residual < 1e-10
        assert diag.spectral_radius == pytest.approx(0.7)
        assert diag.wall_time >= 0.0
        assert diag.rungs[-1].accepted

    def test_wrapper_matches_diagnostic_variant(self):
        rng = np.random.default_rng(5)
        m = 3
        a0 = rng.random((m, m)) * 0.2
        a2 = rng.random((m, m)) * 0.8
        a1 = -np.diag(a0.sum(axis=1) + a2.sum(axis=1))
        r1 = solve_r_matrix(a0, a1, a2)
        r2, _ = solve_r_matrix_with_diagnostics(a0, a1, a2)
        assert np.allclose(r1, r2)

    def test_failure_is_typed(self):
        # An A1 with a zero diagonal defeats every rung; the ladder must
        # surface a ReproError, never a bare ArithmeticError or garbage R.
        a0 = np.array([[0.5]])
        a1 = np.array([[0.0]])
        a2 = np.array([[0.5]])
        with pytest.raises(ReproError):
            solve_r_matrix(a0, a1, a2)
