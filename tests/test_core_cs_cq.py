"""Tests for the CS-CQ analysis (the paper's contribution)."""

import numpy as np
import pytest

from repro.core import (
    CsCqAnalysis,
    CsCqTruncatedChain,
    SystemParameters,
    UnstableSystemError,
    cs_cq_long_response_saturated,
)
from repro.core.cs_cq import fit_busy_period
from repro.queueing import Mg1Queue, Mg1SetupQueue, MmcQueue


class TestLimits:
    def test_lam_l_to_zero_is_mm2(self):
        p = SystemParameters.from_loads(rho_s=1.2, rho_l=1e-9)
        a = CsCqAnalysis(p)
        exact = MmcQueue(p.lam_s, p.mu_s, 2).mean_response_time()
        assert a.mean_response_time_short() == pytest.approx(exact, rel=1e-6)

    def test_lam_s_to_zero_longs_are_mg1(self):
        p = SystemParameters.from_loads(rho_s=1e-9, rho_l=0.6)
        a = CsCqAnalysis(p)
        exact = Mg1Queue(p.lam_l, p.long_service).mean_response_time()
        assert a.mean_response_time_long() == pytest.approx(exact, rel=1e-6)

    def test_shorts_near_saturation_longs_see_full_setup(self):
        p = SystemParameters.from_loads(rho_s=1.3 - 1e-3, rho_l=0.7)
        a = CsCqAnalysis(p)
        nu = 2.0 * p.mu_s
        exact = Mg1SetupQueue(
            p.lam_l, p.long_service, (1 / nu, 2 / nu**2)
        ).mean_response_time()
        assert a.mean_response_time_long() == pytest.approx(exact, rel=1e-3)


class TestVsExactChain:
    @pytest.mark.slow
    @pytest.mark.parametrize("rho_s", [0.5, 1.0, 1.3])
    def test_within_paper_error_envelope(self, rho_s):
        """Paper: analysis within ~2% of truth, worst < 5% at very high load."""
        p = SystemParameters.from_loads(rho_s=rho_s, rho_l=0.5)
        analysis = CsCqAnalysis(p)
        exact = CsCqTruncatedChain(p, max_short=90, max_long=50).solve()
        short_err = abs(
            analysis.mean_response_time_short() / exact.mean_response_time_short - 1
        )
        long_err = abs(
            analysis.mean_response_time_long() / exact.mean_response_time_long - 1
        )
        assert short_err < 0.02
        assert long_err < 0.005


class TestStructure:
    def test_region_probabilities_sum_to_prob_zero_longs(self):
        p = SystemParameters.from_loads(rho_s=0.8, rho_l=0.5)
        a = CsCqAnalysis(p)
        regions = a.region_probabilities()
        # P(zero longs) >= 1 - rho_l-ish sanity; and both regions positive.
        assert regions.region1 > 0 and regions.region2 > 0
        assert 0 < regions.p_setup_zero < 1

    def test_queue_length_distribution_sums_to_one(self):
        p = SystemParameters.from_loads(rho_s=0.8, rho_l=0.5)
        dist = CsCqAnalysis(p).queue_length_distribution_short(400)
        assert dist.sum() == pytest.approx(1.0, abs=1e-8)
        assert np.all(dist >= 0)

    def test_mean_number_consistent_with_distribution(self):
        p = SystemParameters.from_loads(rho_s=0.8, rho_l=0.5)
        a = CsCqAnalysis(p)
        dist = a.queue_length_distribution_short(600)
        assert a.mean_number_short() == pytest.approx(
            float(np.arange(601) @ dist), rel=1e-6
        )

    def test_littles_law(self):
        p = SystemParameters.from_loads(rho_s=1.1, rho_l=0.4)
        a = CsCqAnalysis(p)
        assert a.mean_number_short() == pytest.approx(
            p.lam_s * a.mean_response_time_short()
        )

    def test_stability_enforced(self):
        with pytest.raises(UnstableSystemError):
            CsCqAnalysis(SystemParameters.from_loads(rho_s=1.5, rho_l=0.5))
        with pytest.raises(UnstableSystemError):
            CsCqAnalysis(SystemParameters.from_loads(rho_s=0.5, rho_l=1.0))

    def test_stable_just_inside_boundary(self):
        p = SystemParameters.from_loads(rho_s=1.49, rho_l=0.5)
        a = CsCqAnalysis(p)
        assert a.mean_response_time_short() > 50  # exploding but finite

    def test_response_monotone_in_rho_s(self):
        values = [
            CsCqAnalysis(
                SystemParameters.from_loads(rho_s=r, rho_l=0.5)
            ).mean_response_time_short()
            for r in (0.3, 0.7, 1.1, 1.4)
        ]
        assert values == sorted(values)

    def test_general_long_distribution_supported(self):
        p = SystemParameters.from_loads(rho_s=1.0, rho_l=0.5, long_scv=8.0)
        a = CsCqAnalysis(p)
        assert a.mean_response_time_short() > 0
        assert a.mean_response_time_long() > p.long_service.mean


class TestMomentKnob:
    def test_three_moments_beats_one(self):
        """The ablation claim: accuracy improves with matched moments."""
        p = SystemParameters.from_loads(rho_s=1.2, rho_l=0.5)
        exact = CsCqTruncatedChain(p, max_short=120, max_long=60).solve()
        errors = {}
        for n in (1, 3):
            value = CsCqAnalysis(p, n_moments=n).mean_response_time_short()
            errors[n] = abs(value / exact.mean_response_time_short - 1)
        assert errors[3] < errors[1]

    def test_invalid_n_moments(self):
        with pytest.raises(ValueError):
            fit_busy_period((1.0, 2.0, 6.0), 4)

    def test_fit_busy_period_orders(self):
        moms = (2.0, 16.0, 288.0)
        for n in (1, 2, 3):
            dist = fit_busy_period(moms, n)
            assert dist.mean == pytest.approx(2.0)
        assert fit_busy_period(moms, 3).moment(3) == pytest.approx(288.0, rel=1e-8)


class TestSaturatedLongResponse:
    def test_worse_than_stable_analysis(self):
        stable = SystemParameters.from_loads(rho_s=0.5, rho_l=0.5)
        assert cs_cq_long_response_saturated(stable) >= CsCqAnalysis(
            stable
        ).mean_response_time_long()

    def test_requires_stable_longs(self):
        with pytest.raises(UnstableSystemError):
            cs_cq_long_response_saturated(
                SystemParameters.from_loads(rho_s=1.5, rho_l=1.0)
            )
